//! Lock-free per-operator metrics and batch-queue gauges.
//!
//! A [`ModelTelemetry`] is built once per compiled model from a list of
//! [`OpDescriptor`]s (name, kind, static cost model) and shared behind an
//! `Arc` by every serving thread. Recording a sample touches only relaxed
//! atomics — no locks, no allocation — so enabled-telemetry overhead is a
//! `Instant` pair plus a handful of `fetch_add`s per operator.
//!
//! The *cost model* ([`OpCost`]) is computed at compile time from the
//! operator's geometry: how many effective xor+popcount bit-operations one
//! call performs, how many bytes it moves, and (for GEMM-backed operators)
//! the tile shape. The hot path records only latency; rates like GOPS and
//! bandwidth fall out at snapshot time as `cost × calls / total_ns`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bitflow_simd::perf::{self, PerfSample};
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::hist::{bucket_upper_edge, LatencyHistogram};
use crate::snapshot::{
    BatchSnapshot, GovernSnapshot, HistBucket, MetricsSnapshot, OpBound, OpSnapshot, PerfSnapshot,
    ServeSnapshot, SizeBucket, StageSnapshot, BATCH_SIZE_EDGES, SCHEMA_VERSION,
};
use crate::span::{NoopSink, RequestTrace, SpanSink};

/// Coarse operator category, mirroring the engine's runtime op set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Float input → sign bits (first-layer binarization).
    Binarize,
    /// PressedConv binary convolution.
    Conv,
    /// Binary max-pool (OR over packed words).
    Pool,
    /// Spatial-to-row reflattening between conv and FC stages.
    Flatten,
    /// Binary fully-connected layer with sign activation.
    Fc,
    /// Final fully-connected layer producing integer logits.
    FcOut,
}

impl OpKind {
    /// Stable lower-case label used in snapshots.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Binarize => "binarize",
            OpKind::Conv => "conv",
            OpKind::Pool => "pool",
            OpKind::Flatten => "flatten",
            OpKind::Fc => "fc",
            OpKind::FcOut => "fc-out",
        }
    }
}

/// bgemm micro-kernel tile geometry for a GEMM-backed operator, following
/// the paper's M×N×K convention (§III-C): N is the reduction / vector axis,
/// K the output-neuron / multi-core axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileStats {
    /// GEMM M dimension (rows / output pixels).
    pub m: usize,
    /// GEMM K dimension (output channels / neurons) — the multi-core axis.
    pub k: usize,
    /// GEMM N (reduction) dimension in packed 64-bit words — the vector axis.
    pub n_words: usize,
    /// 4-way-unrolled output quads per row in the micro-kernel.
    pub quads: usize,
    /// Remainder outputs per row handled by the non-unrolled tail.
    pub tail: usize,
    /// Output-column chunk granted to each parallel task.
    pub par_k_chunk: usize,
}

/// Static per-call cost of one operator, derived from its geometry at
/// compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Effective xor+popcount bit-operations per call: 2 ops (one xor, one
    /// popcount-accumulate) for every weight·activation bit position the
    /// operator evaluates. This is the numerator of the paper's
    /// "binary GOPS" throughput metric.
    pub bit_ops: u64,
    /// Bytes read per call (packed activations + packed weights).
    pub bytes_read: u64,
    /// Bytes written per call.
    pub bytes_written: u64,
    /// Micro-kernel tile geometry, for GEMM-backed operators.
    pub tile: Option<TileStats>,
}

/// Compile-time description of one operator channel.
#[derive(Clone, Debug)]
pub struct OpDescriptor {
    /// Operator name (layer name or builtin step name like "binarize-input").
    pub name: String,
    /// Operator category.
    pub kind: OpKind,
    /// Static per-call cost.
    pub cost: OpCost,
}

/// Live counters for one operator. All fields are relaxed atomics.
struct OpMetrics {
    calls: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: LatencyHistogram,
}

impl OpMetrics {
    fn new() -> Self {
        Self {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            hist: LatencyHistogram::new(),
        }
    }

    #[inline]
    fn record(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.hist.record(ns);
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.hist.reset();
    }
}

struct OpChannel {
    name: String,
    kind: OpKind,
    cost: OpCost,
    metrics: OpMetrics,
}

/// Batch-serving gauges updated by `try_infer_batch`.
#[derive(Default)]
pub struct BatchGauges {
    batches: AtomicU64,
    items: AtomicU64,
    failed_items: AtomicU64,
    chunks: AtomicU64,
    max_batch: AtomicU64,
    queued_items: AtomicU64,
}

impl BatchGauges {
    /// Called once when a batch of `items` requests is accepted, split into
    /// `chunks` per-thread chunks. Raises the queued-items gauge.
    pub fn batch_started(&self, items: u64, chunks: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        self.chunks.fetch_add(chunks, Ordering::Relaxed);
        self.max_batch.fetch_max(items, Ordering::Relaxed);
        self.queued_items.fetch_add(items, Ordering::Relaxed);
    }

    /// Called per completed item. Lowers the queued-items gauge; counts the
    /// item as failed when `ok` is false.
    pub fn item_finished(&self, ok: bool) {
        self.queued_items.fetch_sub(1, Ordering::Relaxed);
        if !ok {
            self.failed_items.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Items currently in flight inside `try_infer_batch` (0 when idle).
    pub fn queued(&self) -> u64 {
        self.queued_items.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            failed_items: self.failed_items.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queued_items: self.queued_items.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.items.store(0, Ordering::Relaxed);
        self.failed_items.store(0, Ordering::Relaxed);
        self.chunks.store(0, Ordering::Relaxed);
        self.max_batch.store(0, Ordering::Relaxed);
        // queued_items is a live gauge, not a counter: leave it alone.
    }
}

/// One always-on request-lifecycle stage timer: a lock-free latency
/// histogram plus a running nanosecond sum, so the Prometheus exposition
/// can render a real histogram family (`_bucket`/`_sum`/`_count`).
/// Recording is two relaxed `fetch_add`s — cheap enough to leave on even
/// when tracing is off.
#[derive(Default)]
pub struct StageTimer {
    hist: LatencyHistogram,
    total_ns: AtomicU64,
}

impl StageTimer {
    /// Records one stage duration.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.hist.record(ns);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StageSnapshot {
        let buckets = self.hist.snapshot_buckets();
        StageSnapshot {
            count: self.hist.count(),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(idx, &count)| HistBucket {
                    le_ns: bucket_upper_edge(idx),
                    count,
                })
                .collect(),
        }
    }

    fn reset(&self) {
        self.hist.reset();
        self.total_ns.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for StageTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageTimer")
            .field("count", &self.hist.count())
            .field("total_ns", &self.total_ns.load(Ordering::Relaxed))
            .finish()
    }
}

/// Serving-runtime counters updated by `bitflow-serve`: admission,
/// shedding, deadlines, worker health. All relaxed atomics — the serving
/// hot path records into these lock-free, and the server shares one handle
/// with [`ModelTelemetry`] so the counters surface in
/// [`MetricsSnapshot::serve`] and the Prometheus exposition.
#[derive(Debug, Default)]
pub struct ServeGauges {
    submitted: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shedding: AtomicU64,
    rejected_draining: AtomicU64,
    rejected_quota: AtomicU64,
    shed_deadline: AtomicU64,
    deadline_missed: AtomicU64,
    cancelled: AtomicU64,
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    breaker_trips: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
    batches: AtomicU64,
    batch_items: AtomicU64,
    batch_size_max: AtomicU64,
    // One counter per BATCH_SIZE_EDGES bucket plus the overflow bucket.
    batch_size_hist: [AtomicU64; BATCH_SIZE_EDGES.len() + 1],
    net_accepted_conns: AtomicU64,
    net_rejected_conns: AtomicU64,
    net_timeouts_read: AtomicU64,
    net_timeouts_write: AtomicU64,
    net_malformed_requests: AtomicU64,
    net_bytes_in: AtomicU64,
    net_bytes_out: AtomicU64,
    rejected_memory: AtomicU64,
    net_accept_errors: AtomicU64,
    net_spawn_sheds: AtomicU64,
    mem_used_bytes: AtomicU64,
    mem_budget_bytes: AtomicU64,
    mem_leases: AtomicU64,
    degradation_state: AtomicU64,
    stage_queue_wait: StageTimer,
    stage_batch_wait: StageTimer,
    stage_exec: StageTimer,
    stage_write: StageTimer,
}

impl ServeGauges {
    /// A request was offered to `submit` (admitted or not).
    pub fn submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered the admission queue. Raises the depth gauge.
    pub fn enqueued(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// A request left the admission queue (picked up or shed). Lowers the
    /// depth gauge.
    pub fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A submission was refused with the given rejection label
    /// (`"queue_full"`, `"shedding"`, `"draining"`, `"quota"`,
    /// `"memory"` — anything else counts as queue-full, the conservative
    /// bucket).
    pub fn rejected(&self, label: &str) {
        match label {
            "shedding" => &self.rejected_shedding,
            "draining" => &self.rejected_draining,
            "quota" => &self.rejected_quota,
            "memory" => &self.rejected_memory,
            _ => &self.rejected_queue_full,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// A worker served one coalesced micro-batch of `size` requests in a
    /// single engine call (`size == 1` is the unbatched fast path).
    pub fn batch_served(&self, size: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(size, Ordering::Relaxed);
        self.batch_size_max.fetch_max(size, Ordering::Relaxed);
        let idx = BATCH_SIZE_EDGES
            .iter()
            .position(|&edge| size <= edge)
            .unwrap_or(BATCH_SIZE_EDGES.len());
        self.batch_size_hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request completed with logits.
    pub fn completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request resolved to a typed inference error.
    pub fn failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was dropped before running: its deadline budget
    /// was already unmeetable.
    pub fn shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was cancelled mid-run by its deadline.
    pub fn deadline_missed(&self) {
        self.deadline_missed.fetch_add(1, Ordering::Relaxed);
    }

    /// An admitted request was cancelled by its caller.
    pub fn cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker caught and isolated a panic.
    pub fn worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker loop was restarted after a panic escaped the per-request
    /// backstop.
    pub fn worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// The circuit breaker tripped into the shedding state.
    pub fn breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests waiting in the admission queue right now.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The network front-end accepted a TCP connection.
    pub fn conn_accepted(&self) {
        self.net_accepted_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// The accept loop refused a TCP connection (connection cap).
    pub fn conn_rejected(&self) {
        self.net_rejected_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was dropped because a read deadline expired (slowloris
    /// header drip or stalled body).
    pub fn read_timeout(&self) {
        self.net_timeouts_read.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was dropped because a response write stalled past its
    /// deadline.
    pub fn write_timeout(&self) {
        self.net_timeouts_write.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused as malformed before reaching admission.
    pub fn malformed_request(&self) {
        self.net_malformed_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` request bytes were read off the wire.
    pub fn add_bytes_in(&self, n: u64) {
        self.net_bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` response bytes were written to the wire.
    pub fn add_bytes_out(&self, n: u64) {
        self.net_bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// The accept loop's `accept(2)` returned a non-transient error
    /// (EMFILE/ENFILE descriptor exhaustion included).
    pub fn accept_error(&self) {
        self.net_accept_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was shed because its handler thread could not be
    /// spawned — counted apart from cap rejections so descriptor/thread
    /// exhaustion is visible as its own failure mode.
    pub fn spawn_shed(&self) {
        self.net_spawn_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// The resource governor granted a lease of `bytes`. Raises the
    /// used-bytes and live-lease gauges.
    pub fn mem_reserved(&self, bytes: u64) {
        self.mem_used_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.mem_leases.fetch_add(1, Ordering::Relaxed);
    }

    /// A memory lease of `bytes` was released. Lowers the used-bytes and
    /// live-lease gauges.
    pub fn mem_released(&self, bytes: u64) {
        self.mem_used_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.mem_leases.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes the governor's global byte budget (0 = unbudgeted).
    pub fn set_mem_budget(&self, bytes: u64) {
        self.mem_budget_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Publishes the brownout state machine's current state
    /// (0 = Normal, 1 = Brownout, 2 = Shed).
    pub fn set_degradation_state(&self, state: u64) {
        self.degradation_state.store(state, Ordering::Relaxed);
    }

    /// The brownout state machine's last published state.
    pub fn degradation_state(&self) -> u64 {
        self.degradation_state.load(Ordering::Relaxed)
    }

    /// A request spent `ns` in the admission queue before a worker popped
    /// it.
    #[inline]
    pub fn record_queue_wait_ns(&self, ns: u64) {
        self.stage_queue_wait.record(ns);
    }

    /// A request spent `ns` between being popped and its micro-batch
    /// starting execution (coalescing window plus dispatch).
    #[inline]
    pub fn record_batch_wait_ns(&self, ns: u64) {
        self.stage_batch_wait.record(ns);
    }

    /// A request spent `ns` executing inside the engine.
    #[inline]
    pub fn record_exec_ns(&self, ns: u64) {
        self.stage_exec.record(ns);
    }

    /// A response spent `ns` being written to the wire.
    #[inline]
    pub fn record_write_ns(&self, ns: u64) {
        self.stage_write.record(ns);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shedding: self.rejected_shedding.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_items: self.batch_items.load(Ordering::Relaxed),
            batch_size_max: self.batch_size_max.load(Ordering::Relaxed),
            batch_size_hist: self
                .batch_size_hist
                .iter()
                .enumerate()
                .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
                .map(|(idx, c)| SizeBucket {
                    le: BATCH_SIZE_EDGES.get(idx).copied().unwrap_or(u64::MAX),
                    count: c.load(Ordering::Relaxed),
                })
                .collect(),
            net_accepted_conns: self.net_accepted_conns.load(Ordering::Relaxed),
            net_rejected_conns: self.net_rejected_conns.load(Ordering::Relaxed),
            net_timeouts_read: self.net_timeouts_read.load(Ordering::Relaxed),
            net_timeouts_write: self.net_timeouts_write.load(Ordering::Relaxed),
            net_malformed_requests: self.net_malformed_requests.load(Ordering::Relaxed),
            net_bytes_in: self.net_bytes_in.load(Ordering::Relaxed),
            net_bytes_out: self.net_bytes_out.load(Ordering::Relaxed),
            govern: GovernSnapshot {
                rejected_memory: self.rejected_memory.load(Ordering::Relaxed),
                net_accept_errors: self.net_accept_errors.load(Ordering::Relaxed),
                net_spawn_sheds: self.net_spawn_sheds.load(Ordering::Relaxed),
                mem_used_bytes: self.mem_used_bytes.load(Ordering::Relaxed),
                mem_budget_bytes: self.mem_budget_bytes.load(Ordering::Relaxed),
                mem_leases: self.mem_leases.load(Ordering::Relaxed),
                degradation_state: self.degradation_state.load(Ordering::Relaxed),
            },
            stage_queue_wait: self.stage_queue_wait.snapshot(),
            stage_batch_wait: self.stage_batch_wait.snapshot(),
            stage_exec: self.stage_exec.snapshot(),
            stage_write: self.stage_write.snapshot(),
        }
    }

    fn reset(&self) {
        for c in [
            &self.submitted,
            &self.accepted,
            &self.completed,
            &self.failed,
            &self.rejected_queue_full,
            &self.rejected_shedding,
            &self.rejected_draining,
            &self.rejected_quota,
            &self.shed_deadline,
            &self.deadline_missed,
            &self.cancelled,
            &self.worker_panics,
            &self.worker_restarts,
            &self.breaker_trips,
            &self.queue_depth_max,
            &self.batches,
            &self.batch_items,
            &self.batch_size_max,
            &self.net_accepted_conns,
            &self.net_rejected_conns,
            &self.net_timeouts_read,
            &self.net_timeouts_write,
            &self.net_malformed_requests,
            &self.net_bytes_in,
            &self.net_bytes_out,
            &self.rejected_memory,
            &self.net_accept_errors,
            &self.net_spawn_sheds,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.batch_size_hist {
            c.store(0, Ordering::Relaxed);
        }
        for t in [
            &self.stage_queue_wait,
            &self.stage_batch_wait,
            &self.stage_exec,
            &self.stage_write,
        ] {
            t.reset();
        }
        // queue_depth, mem_used_bytes, mem_budget_bytes, mem_leases, and
        // degradation_state are live gauges, not counters: leave them
        // alone.
    }
}

/// Hardware-counter totals accumulated across sampled requests. All
/// relaxed atomics; the optional events track how many samples actually
/// carried them so absence is never reported as zero.
#[derive(Default)]
struct PerfTotals {
    sampled_requests: AtomicU64,
    cycles: AtomicU64,
    instructions: AtomicU64,
    llc_misses: AtomicU64,
    llc_samples: AtomicU64,
    branch_misses: AtomicU64,
    branch_samples: AtomicU64,
}

/// Whether BITFLOW_PERF explicitly disables counter sampling.
fn perf_disabled_by_env() -> bool {
    std::env::var_os("BITFLOW_PERF").is_some_and(|v| v.as_os_str() == "0")
}

/// All telemetry state for one compiled model: per-operator channels,
/// batch gauges, perf-counter totals, and the span sink. Shared behind
/// `Arc` by every thread serving the model.
pub struct ModelTelemetry {
    model: String,
    ops: Vec<OpChannel>,
    batch: BatchGauges,
    sink: Box<dyn SpanSink>,
    request_ids: AtomicU64,
    perf_sampling: AtomicBool,
    perf: PerfTotals,
    serve: Arc<ServeGauges>,
}

impl ModelTelemetry {
    /// Telemetry with the default [`NoopSink`] (metrics on, tracing off).
    pub fn new(model: impl Into<String>, descriptors: Vec<OpDescriptor>) -> Self {
        Self::with_sink(model, descriptors, Box::new(NoopSink))
    }

    /// Telemetry with an explicit span sink.
    pub fn with_sink(
        model: impl Into<String>,
        descriptors: Vec<OpDescriptor>,
        sink: Box<dyn SpanSink>,
    ) -> Self {
        let ops = descriptors
            .into_iter()
            .map(|d| OpChannel {
                name: d.name,
                kind: d.kind,
                cost: d.cost,
                metrics: OpMetrics::new(),
            })
            .collect();
        // Sampling defaults to on whenever the machine can deliver it;
        // BITFLOW_PERF=0 opts out. Probing here (construction happens at
        // enable-telemetry time, off the hot path) keeps the per-request
        // check a single relaxed load.
        let sampling = !perf_disabled_by_env() && perf::probe().is_ok();
        Self {
            model: model.into(),
            ops,
            batch: BatchGauges::default(),
            sink,
            request_ids: AtomicU64::new(0),
            perf_sampling: AtomicBool::new(sampling),
            perf: PerfTotals::default(),
            serve: Arc::new(ServeGauges::default()),
        }
    }

    /// Handle to the serving-runtime counters. The serving layer clones
    /// this so its admission/deadline/worker events land in the same
    /// snapshot and Prometheus exposition as the operator metrics.
    pub fn serve(&self) -> Arc<ServeGauges> {
        Arc::clone(&self.serve)
    }

    /// Number of operator channels.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Name of operator channel `idx`.
    pub fn op_name(&self, idx: usize) -> Option<&str> {
        self.ops.get(idx).map(|c| c.name.as_str())
    }

    /// Records one sample for operator channel `idx`. Out-of-range indices
    /// are ignored (telemetry must never panic the serving path).
    #[inline]
    pub fn record_op(&self, idx: usize, ns: u64) {
        if let Some(ch) = self.ops.get(idx) {
            ch.metrics.record(ns);
        }
    }

    /// Whether the installed sink wants traces. The engine skips building
    /// [`RequestTrace`]s entirely when this is `false`.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Allocates the next monotonic request id.
    #[inline]
    pub fn next_request_id(&self) -> u64 {
        self.request_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Forwards a completed trace to the sink.
    pub fn record_request(&self, trace: &RequestTrace) {
        self.sink.record(trace);
    }

    /// Batch-serving gauges.
    pub fn batch(&self) -> &BatchGauges {
        &self.batch
    }

    /// Whether per-request hardware-counter sampling is active.
    #[inline]
    pub fn perf_sampling(&self) -> bool {
        self.perf_sampling.load(Ordering::Relaxed)
    }

    /// Turns hardware-counter sampling on or off at runtime. Turning it on
    /// on a machine without counter access is harmless: every request
    /// degrades to the uncounted path.
    pub fn set_perf_sampling(&self, on: bool) {
        self.perf_sampling.store(on, Ordering::Relaxed);
    }

    /// Accumulates one request's counter sample.
    pub fn record_perf_sample(&self, s: &PerfSample) {
        self.perf.sampled_requests.fetch_add(1, Ordering::Relaxed);
        self.perf.cycles.fetch_add(s.cycles, Ordering::Relaxed);
        self.perf
            .instructions
            .fetch_add(s.instructions, Ordering::Relaxed);
        if let Some(v) = s.llc_misses {
            self.perf.llc_misses.fetch_add(v, Ordering::Relaxed);
            self.perf.llc_samples.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(v) = s.branch_misses {
            self.perf.branch_misses.fetch_add(v, Ordering::Relaxed);
            self.perf.branch_samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs `f` with this thread's hardware-counter group counting, and
    /// accumulates the sample into the model totals. When sampling is off
    /// or counters are unavailable, `f` runs directly — the only cost is
    /// one relaxed load. Allocation-free in every steady-state path.
    #[inline]
    pub fn perf_request_scope<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.perf_sampling.load(Ordering::Relaxed) {
            return f();
        }
        perf::with_thread_group(|g| match g {
            Some(g) => {
                let (r, sample) = g.measure(f);
                if let Some(s) = sample {
                    self.record_perf_sample(&s);
                }
                r
            }
            None => f(),
        })
    }

    fn perf_snapshot(&self) -> PerfSnapshot {
        let status = if perf_disabled_by_env() {
            "disabled".to_string()
        } else {
            match perf::probe() {
                Ok(_) => "ok".to_string(),
                Err(reason) => format!("unavailable: {reason}"),
            }
        };
        let sampled = self.perf.sampled_requests.load(Ordering::Relaxed);
        let cycles = (sampled > 0).then(|| self.perf.cycles.load(Ordering::Relaxed));
        let instructions = (sampled > 0).then(|| self.perf.instructions.load(Ordering::Relaxed));
        let ipc = match (cycles, instructions) {
            (Some(c), Some(i)) if c > 0 => Some(i as f64 / c as f64),
            _ => None,
        };
        PerfSnapshot {
            status,
            sampled_requests: sampled,
            cycles,
            instructions,
            llc_misses: (self.perf.llc_samples.load(Ordering::Relaxed) > 0)
                .then(|| self.perf.llc_misses.load(Ordering::Relaxed)),
            branch_misses: (self.perf.branch_samples.load(Ordering::Relaxed) > 0)
                .then(|| self.perf.branch_misses.load(Ordering::Relaxed)),
            ipc,
        }
    }

    /// Consistent point-in-time copy of every counter, with percentiles,
    /// rates (GOPS, bandwidth), and roofline attribution computed from the
    /// static cost model and the cached machine roofline.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let ops = self.ops.iter().map(op_snapshot).collect();
        let roofline = crate::roofline::current();
        let mut snap = MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            model: self.model.clone(),
            requests: self.request_ids.load(Ordering::Relaxed),
            machine: roofline.to_snapshot(),
            perf: self.perf_snapshot(),
            ops,
            batch: self.batch.snapshot(),
            serve: self.serve.snapshot(),
        };
        roofline.annotate(&mut snap);
        snap
    }

    /// Zeroes all counters and histograms (the queued-items gauge and the
    /// request-id counter keep their live values).
    pub fn reset(&self) {
        for ch in &self.ops {
            ch.metrics.reset();
        }
        self.batch.reset();
        for c in [
            &self.perf.sampled_requests,
            &self.perf.cycles,
            &self.perf.instructions,
            &self.perf.llc_misses,
            &self.perf.llc_samples,
            &self.perf.branch_misses,
            &self.perf.branch_samples,
        ] {
            c.store(0, Ordering::Relaxed);
        }
        self.serve.reset();
    }
}

impl std::fmt::Debug for ModelTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelTelemetry")
            .field("model", &self.model)
            .field("ops", &self.ops.len())
            .finish_non_exhaustive()
    }
}

fn op_snapshot(ch: &OpChannel) -> OpSnapshot {
    let calls = ch.metrics.calls.load(Ordering::Relaxed);
    let total_ns = ch.metrics.total_ns.load(Ordering::Relaxed);
    let max_ns = ch.metrics.max_ns.load(Ordering::Relaxed);
    let mean_ns = if calls > 0 {
        total_ns as f64 / calls as f64
    } else {
        0.0
    };
    // 1 bit-op per ns == 1e9 bit-ops per second == 1 GOPS, so the ratio of
    // totals is directly in GOPS.
    let gops = if total_ns > 0 {
        (ch.cost.bit_ops.saturating_mul(calls)) as f64 / total_ns as f64
    } else {
        0.0
    };
    let gb_per_s = if total_ns > 0 {
        (ch.cost.bytes_read + ch.cost.bytes_written).saturating_mul(calls) as f64 / total_ns as f64
    } else {
        0.0
    };
    let buckets = ch.metrics.hist.snapshot_buckets();
    let hist = buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(idx, &count)| HistBucket {
            le_ns: bucket_upper_edge(idx),
            count,
        })
        .collect();
    OpSnapshot {
        name: ch.name.clone(),
        kind: ch.kind,
        calls,
        total_ns,
        mean_ns,
        max_ns,
        p50_ns: crate::hist::percentile_of(&buckets, 50.0),
        p95_ns: crate::hist::percentile_of(&buckets, 95.0),
        p99_ns: crate::hist::percentile_of(&buckets, 99.0),
        bit_ops_per_call: ch.cost.bit_ops,
        bytes_read_per_call: ch.cost.bytes_read,
        bytes_written_per_call: ch.cost.bytes_written,
        gops,
        gb_per_s,
        // Roofline attribution is stamped by `Roofline::annotate`.
        pct_of_peak_compute: 0.0,
        pct_of_peak_bandwidth: 0.0,
        bound: OpBound::Idle,
        hist,
        tile: ch.cost.tile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptors() -> Vec<OpDescriptor> {
        vec![
            OpDescriptor {
                name: "binarize-input".to_string(),
                kind: OpKind::Binarize,
                cost: OpCost::default(),
            },
            OpDescriptor {
                name: "conv1".to_string(),
                kind: OpKind::Conv,
                cost: OpCost {
                    bit_ops: 2_000,
                    bytes_read: 512,
                    bytes_written: 128,
                    tile: Some(TileStats {
                        m: 64,
                        k: 32,
                        n_words: 9,
                        quads: 8,
                        tail: 0,
                        par_k_chunk: 32,
                    }),
                },
            },
        ]
    }

    #[test]
    fn record_and_snapshot() {
        let t = ModelTelemetry::new("test-net", descriptors());
        assert_eq!(t.op_count(), 2);
        assert_eq!(t.op_name(1), Some("conv1"));
        for ns in [100u64, 200, 300, 400] {
            t.record_op(1, ns);
        }
        let snap = t.snapshot();
        let conv = &snap.ops[1];
        assert_eq!(conv.calls, 4);
        assert_eq!(conv.total_ns, 1_000);
        assert!((conv.mean_ns - 250.0).abs() < 1e-9);
        assert_eq!(conv.max_ns, 400);
        // 2000 bit-ops × 4 calls / 1000 ns = 8 GOPS exactly.
        assert!((conv.gops - 8.0).abs() < 1e-9, "gops {}", conv.gops);
        // (512+128) bytes × 4 calls / 1000 ns = 2.56 GB/s.
        assert!((conv.gb_per_s - 2.56).abs() < 1e-9);
        assert_eq!(conv.tile.map(|s| s.n_words), Some(9));
        // Untouched channel stays zero.
        assert_eq!(snap.ops[0].calls, 0);
        assert_eq!(snap.ops[0].gops, 0.0);
    }

    #[test]
    fn out_of_range_record_is_ignored() {
        let t = ModelTelemetry::new("test-net", descriptors());
        t.record_op(99, 1); // must not panic
        assert_eq!(t.snapshot().ops[0].calls, 0);
    }

    #[test]
    fn request_ids_are_monotonic() {
        let t = ModelTelemetry::new("test-net", vec![]);
        assert_eq!(t.next_request_id(), 0);
        assert_eq!(t.next_request_id(), 1);
        assert_eq!(t.snapshot().requests, 2);
    }

    #[test]
    fn batch_gauges_track_in_flight_items() {
        let t = ModelTelemetry::new("test-net", vec![]);
        t.batch().batch_started(4, 2);
        assert_eq!(t.batch().queued(), 4);
        t.batch().item_finished(true);
        t.batch().item_finished(false);
        assert_eq!(t.batch().queued(), 2);
        t.batch().item_finished(true);
        t.batch().item_finished(true);
        let snap = t.snapshot();
        assert_eq!(snap.batch.batches, 1);
        assert_eq!(snap.batch.items, 4);
        assert_eq!(snap.batch.failed_items, 1);
        assert_eq!(snap.batch.chunks, 2);
        assert_eq!(snap.batch.max_batch, 4);
        assert_eq!(snap.batch.queued_items, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let t = ModelTelemetry::new("test-net", descriptors());
        t.record_op(0, 10);
        t.batch().batch_started(2, 1);
        t.batch().item_finished(true);
        t.batch().item_finished(true);
        t.reset();
        let snap = t.snapshot();
        assert_eq!(snap.ops[0].calls, 0);
        assert_eq!(snap.ops[0].p50_ns, 0);
        assert_eq!(snap.batch.batches, 0);
        assert_eq!(snap.batch.items, 0);
    }

    #[test]
    fn serve_gauges_track_quota_and_batch_sizes() {
        let g = ServeGauges::default();
        g.rejected("quota");
        g.batch_served(1);
        g.batch_served(3);
        g.batch_served(40);
        let snap = g.snapshot();
        assert_eq!(snap.rejected_quota, 1);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batch_items, 44);
        assert_eq!(snap.batch_size_max, 40);
        // 1 lands in le=1, 3 in le=4, 40 overflows past the last edge.
        assert_eq!(
            snap.batch_size_hist,
            vec![
                SizeBucket { le: 1, count: 1 },
                SizeBucket { le: 4, count: 1 },
                SizeBucket {
                    le: u64::MAX,
                    count: 1
                },
            ]
        );
        g.reset();
        let snap = g.snapshot();
        assert_eq!(snap.rejected_quota, 0);
        assert_eq!(snap.batches, 0);
        assert!(snap.batch_size_hist.is_empty());
    }

    #[test]
    fn serve_gauges_track_net_counters() {
        let g = ServeGauges::default();
        g.conn_accepted();
        g.conn_accepted();
        g.conn_rejected();
        g.read_timeout();
        g.write_timeout();
        g.malformed_request();
        g.add_bytes_in(1_024);
        g.add_bytes_out(256);
        g.add_bytes_out(256);
        let snap = g.snapshot();
        assert_eq!(snap.net_accepted_conns, 2);
        assert_eq!(snap.net_rejected_conns, 1);
        assert_eq!(snap.net_timeouts_read, 1);
        assert_eq!(snap.net_timeouts_write, 1);
        assert_eq!(snap.net_malformed_requests, 1);
        assert_eq!(snap.net_bytes_in, 1_024);
        assert_eq!(snap.net_bytes_out, 512);
        g.reset();
        let snap = g.snapshot();
        assert_eq!(snap.net_accepted_conns, 0);
        assert_eq!(snap.net_bytes_in, 0);
        assert_eq!(snap.net_bytes_out, 0);
    }

    #[test]
    fn serve_gauges_track_stage_timings() {
        let g = ServeGauges::default();
        g.record_queue_wait_ns(1_000);
        g.record_queue_wait_ns(3_000);
        g.record_batch_wait_ns(500);
        g.record_exec_ns(10_000);
        g.record_write_ns(200);
        let snap = g.snapshot();
        assert_eq!(snap.stage_queue_wait.count, 2);
        assert_eq!(snap.stage_queue_wait.total_ns, 4_000);
        assert_eq!(snap.stage_batch_wait.count, 1);
        assert_eq!(snap.stage_exec.total_ns, 10_000);
        assert_eq!(snap.stage_write.count, 1);
        // Bucket counts reconcile with the stage count.
        let bucketed: u64 = snap.stage_queue_wait.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucketed, 2);
        g.reset();
        let snap = g.snapshot();
        assert_eq!(snap.stage_queue_wait.count, 0);
        assert_eq!(snap.stage_exec.total_ns, 0);
        assert!(snap.stage_write.buckets.is_empty());
    }

    #[test]
    fn default_sink_disables_tracing() {
        let t = ModelTelemetry::new("test-net", vec![]);
        assert!(!t.tracing_enabled());
    }
}
