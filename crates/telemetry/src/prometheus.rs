//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! [`MetricsSnapshot::to_prometheus`] renders the version-0.0.4 text
//! format: one `# HELP`/`# TYPE` header per metric family, all series of a
//! family contiguous, label values escaped, histogram buckets cumulative
//! and terminated with `le="+Inf"`. The output is a plain `String` so a
//! future HTTP endpoint can serve it verbatim; today the bench bins print
//! it and the tests parse it back.
//!
//! Counter families use the `_total` suffix convention; achieved rates and
//! roofline percentages are gauges (they can go down); per-operator
//! latency is a native histogram family derived from the log2-octave
//! buckets, with each bucket's inclusive upper edge as its `le` bound.

use std::fmt::Write;

use crate::snapshot::{MetricsSnapshot, OpBound};

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::with_capacity(4096);
        let model = escape_label(&self.model);

        fn family(s: &mut String, name: &str, help: &str, kind: &str, rows: Vec<(String, String)>) {
            let _ = writeln!(s, "# HELP {name} {help}");
            let _ = writeln!(s, "# TYPE {name} {kind}");
            for (labels, value) in rows {
                let _ = writeln!(s, "{name}{{{labels}}} {value}");
            }
        }
        let op_labels = |op: &crate::snapshot::OpSnapshot| {
            format!(
                "model=\"{model}\",op=\"{}\",kind=\"{}\"",
                escape_label(&op.name),
                op.kind.label()
            )
        };

        family(
            &mut s,
            "bitflow_requests_total",
            "Requests that have entered the engine (including in-flight).",
            "counter",
            vec![(format!("model=\"{model}\""), self.requests.to_string())],
        );

        family(
            &mut s,
            "bitflow_op_calls_total",
            "Recorded operator invocations.",
            "counter",
            self.ops
                .iter()
                .map(|op| (op_labels(op), op.calls.to_string()))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_time_ns_total",
            "Wall time attributed to the operator, nanoseconds.",
            "counter",
            self.ops
                .iter()
                .map(|op| (op_labels(op), op.total_ns.to_string()))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_gops",
            "Sustained xor+popcount throughput, GOPS.",
            "gauge",
            self.ops
                .iter()
                .map(|op| (op_labels(op), fmt_f64(op.gops)))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_gb_per_s",
            "Sustained memory traffic, GB/s.",
            "gauge",
            self.ops
                .iter()
                .map(|op| (op_labels(op), fmt_f64(op.gb_per_s)))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_pct_of_peak_compute",
            "Achieved share of the machine's peak xor+popcount throughput, percent.",
            "gauge",
            self.ops
                .iter()
                .map(|op| (op_labels(op), fmt_f64(op.pct_of_peak_compute)))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_pct_of_peak_bandwidth",
            "Achieved share of the machine's peak memory bandwidth, percent.",
            "gauge",
            self.ops
                .iter()
                .map(|op| (op_labels(op), fmt_f64(op.pct_of_peak_bandwidth)))
                .collect(),
        );
        family(
            &mut s,
            "bitflow_op_memory_bound",
            "Roofline verdict: 1 memory-bound, 0 compute-bound, absent idle.",
            "gauge",
            self.ops
                .iter()
                .filter(|op| op.bound != OpBound::Idle)
                .map(|op| {
                    let v = if op.bound == OpBound::Memory {
                        "1"
                    } else {
                        "0"
                    };
                    (op_labels(op), v.to_string())
                })
                .collect(),
        );

        // Histogram family: cumulative buckets from the sparse snapshot.
        let mut hist_rows = Vec::new();
        for op in &self.ops {
            let labels = op_labels(op);
            let mut cum = 0u64;
            for b in &op.hist {
                cum += b.count;
                hist_rows.push((format!("{labels},le=\"{}\"", b.le_ns), cum.to_string()));
            }
            hist_rows.push((format!("{labels},le=\"+Inf\""), op.calls.to_string()));
        }
        family(
            &mut s,
            "bitflow_op_latency_ns",
            "Per-call operator latency, nanoseconds (log2-octave buckets).",
            "histogram",
            hist_rows,
        );
        // _sum/_count live outside the bucket family header.
        for op in &self.ops {
            let labels = op_labels(op);
            let _ = writeln!(s, "bitflow_op_latency_ns_sum{{{labels}}} {}", op.total_ns);
            let _ = writeln!(s, "bitflow_op_latency_ns_count{{{labels}}} {}", op.calls);
        }

        let m = &self.machine;
        let mlab = format!("model=\"{model}\"");
        family(
            &mut s,
            "bitflow_machine_peak_gops",
            "Theoretical peak xor+popcount throughput, GOPS.",
            "gauge",
            vec![(mlab.clone(), fmt_f64(m.peak_gops))],
        );
        family(
            &mut s,
            "bitflow_machine_peak_gb_per_s",
            "Peak streaming memory bandwidth, GB/s.",
            "gauge",
            vec![(mlab.clone(), fmt_f64(m.peak_gb_per_s))],
        );
        family(
            &mut s,
            "bitflow_machine_freq_ghz",
            "Estimated sustained core frequency, GHz.",
            "gauge",
            vec![(mlab.clone(), fmt_f64(m.freq_ghz))],
        );
        family(
            &mut s,
            "bitflow_machine_logical_cores",
            "Logical cores visible to the process.",
            "gauge",
            vec![(mlab.clone(), m.logical_cores.to_string())],
        );

        family(
            &mut s,
            "bitflow_perf_sampled_requests_total",
            "Requests wrapped in a hardware-counter group.",
            "counter",
            vec![(mlab.clone(), self.perf.sampled_requests.to_string())],
        );
        family(
            &mut s,
            "bitflow_perf_available",
            "Whether hardware counters are being collected (status label).",
            "gauge",
            vec![(
                format!(
                    "model=\"{model}\",status=\"{}\"",
                    escape_label(&self.perf.status)
                ),
                (if self.perf.status == "ok" { "1" } else { "0" }).to_string(),
            )],
        );
        let perf_counters: [(&str, &str, Option<u64>); 4] = [
            (
                "bitflow_perf_cycles_total",
                "Core cycles across sampled requests.",
                self.perf.cycles,
            ),
            (
                "bitflow_perf_instructions_total",
                "Retired instructions across sampled requests.",
                self.perf.instructions,
            ),
            (
                "bitflow_perf_llc_misses_total",
                "Last-level-cache misses across sampled requests.",
                self.perf.llc_misses,
            ),
            (
                "bitflow_perf_branch_misses_total",
                "Mispredicted branches across sampled requests.",
                self.perf.branch_misses,
            ),
        ];
        for (name, help, value) in perf_counters {
            if let Some(v) = value {
                family(
                    &mut s,
                    name,
                    help,
                    "counter",
                    vec![(mlab.clone(), v.to_string())],
                );
            }
        }

        let b = &self.batch;
        family(
            &mut s,
            "bitflow_batch_items_total",
            "Items accepted across all batches.",
            "counter",
            vec![(mlab.clone(), b.items.to_string())],
        );
        family(
            &mut s,
            "bitflow_batch_failed_items_total",
            "Items that returned an error.",
            "counter",
            vec![(mlab.clone(), b.failed_items.to_string())],
        );
        family(
            &mut s,
            "bitflow_batch_queued_items",
            "Items currently in flight inside try_infer_batch.",
            "gauge",
            vec![(mlab.clone(), b.queued_items.to_string())],
        );

        let sv = &self.serve;
        let serve_counters: [(&str, &str, u64); 10] = [
            (
                "bitflow_serve_submitted_total",
                "Requests offered to the serving admission queue.",
                sv.submitted,
            ),
            (
                "bitflow_serve_accepted_total",
                "Requests admitted into the serving queue.",
                sv.accepted,
            ),
            (
                "bitflow_serve_completed_total",
                "Admitted requests that returned logits.",
                sv.completed,
            ),
            (
                "bitflow_serve_failed_total",
                "Admitted requests that resolved to an inference error.",
                sv.failed,
            ),
            (
                "bitflow_serve_deadline_shed_total",
                "Admitted requests dropped before running: deadline unmeetable.",
                sv.shed_deadline,
            ),
            (
                "bitflow_serve_deadline_missed_total",
                "Admitted requests cancelled mid-run by their deadline.",
                sv.deadline_missed,
            ),
            (
                "bitflow_serve_cancelled_total",
                "Admitted requests cancelled by their caller.",
                sv.cancelled,
            ),
            (
                "bitflow_serve_worker_panics_total",
                "Panics caught and isolated by serving workers.",
                sv.worker_panics,
            ),
            (
                "bitflow_serve_worker_restarts_total",
                "Worker loops restarted after an escaped panic.",
                sv.worker_restarts,
            ),
            (
                "bitflow_serve_breaker_trips_total",
                "Circuit-breaker transitions into the shedding state.",
                sv.breaker_trips,
            ),
        ];
        for (name, help, value) in serve_counters {
            family(
                &mut s,
                name,
                help,
                "counter",
                vec![(mlab.clone(), value.to_string())],
            );
        }
        family(
            &mut s,
            "bitflow_serve_rejected_total",
            "Submissions refused at admission, by reason.",
            "counter",
            [
                ("queue_full", sv.rejected_queue_full),
                ("shedding", sv.rejected_shedding),
                ("draining", sv.rejected_draining),
                ("quota", sv.rejected_quota),
                ("memory", sv.govern.rejected_memory),
            ]
            .into_iter()
            .map(|(reason, v)| (format!("{mlab},reason=\"{reason}\""), v.to_string()))
            .collect(),
        );
        family(
            &mut s,
            "bitflow_serve_queue_depth",
            "Requests waiting in the admission queue right now.",
            "gauge",
            vec![(mlab.clone(), sv.queue_depth.to_string())],
        );
        family(
            &mut s,
            "bitflow_serve_queue_depth_max",
            "High-water mark of the admission queue since the last reset.",
            "gauge",
            vec![(mlab.clone(), sv.queue_depth_max.to_string())],
        );

        // Served-batch-size histogram: cumulative buckets from the sparse
        // snapshot, +Inf at the total batch count, _sum over served items.
        let mut batch_rows = Vec::new();
        let mut cum = 0u64;
        for b in &sv.batch_size_hist {
            cum += b.count;
            let le = if b.le == u64::MAX {
                "+Inf".to_string()
            } else {
                b.le.to_string()
            };
            batch_rows.push((format!("{mlab},le=\"{le}\""), cum.to_string()));
        }
        if sv.batch_size_hist.last().map(|b| b.le) != Some(u64::MAX) {
            batch_rows.push((format!("{mlab},le=\"+Inf\""), sv.batches.to_string()));
        }
        family(
            &mut s,
            "bitflow_serve_batch_size",
            "Requests per served micro-batch (1 is the unbatched path).",
            "histogram",
            batch_rows,
        );
        let _ = writeln!(
            s,
            "bitflow_serve_batch_size_sum{{{mlab}}} {}",
            sv.batch_items
        );
        let _ = writeln!(s, "bitflow_serve_batch_size_count{{{mlab}}} {}", sv.batches);
        family(
            &mut s,
            "bitflow_serve_batch_size_max",
            "Largest micro-batch served since the last reset.",
            "gauge",
            vec![(mlab.clone(), sv.batch_size_max.to_string())],
        );

        // Request-lifecycle stage histograms: cumulative buckets from the
        // sparse snapshots, +Inf at the stage count, _sum over stage time.
        let stage_hists: [(&str, &str, &crate::snapshot::StageSnapshot); 4] = [
            (
                "bitflow_stage_queue_wait_ns",
                "Admission-queue wait per request, nanoseconds.",
                &sv.stage_queue_wait,
            ),
            (
                "bitflow_stage_batch_wait_ns",
                "Batch-formation wait per request (coalescing + dispatch), nanoseconds.",
                &sv.stage_batch_wait,
            ),
            (
                "bitflow_stage_exec_ns",
                "Engine execution time per request, nanoseconds.",
                &sv.stage_exec,
            ),
            (
                "bitflow_stage_write_ns",
                "Response write time per request, nanoseconds.",
                &sv.stage_write,
            ),
        ];
        for (name, help, stage) in stage_hists {
            let mut rows = Vec::new();
            let mut cum = 0u64;
            for b in &stage.buckets {
                cum += b.count;
                rows.push((format!("{mlab},le=\"{}\"", b.le_ns), cum.to_string()));
            }
            rows.push((format!("{mlab},le=\"+Inf\""), stage.count.to_string()));
            family(&mut s, name, help, "histogram", rows);
            let _ = writeln!(s, "{name}_sum{{{mlab}}} {}", stage.total_ns);
            let _ = writeln!(s, "{name}_count{{{mlab}}} {}", stage.count);
        }

        let net_counters: [(&str, &str, u64); 9] = [
            (
                "bitflow_net_accepted_conns_total",
                "TCP connections accepted by the network front-end.",
                sv.net_accepted_conns,
            ),
            (
                "bitflow_net_rejected_conns_total",
                "TCP connections refused at the accept loop (connection cap).",
                sv.net_rejected_conns,
            ),
            (
                "bitflow_net_timeouts_read_total",
                "Connections dropped by an expired read deadline (slowloris included).",
                sv.net_timeouts_read,
            ),
            (
                "bitflow_net_timeouts_write_total",
                "Connections dropped by a stalled response write.",
                sv.net_timeouts_write,
            ),
            (
                "bitflow_net_malformed_requests_total",
                "Requests refused as malformed before reaching admission.",
                sv.net_malformed_requests,
            ),
            (
                "bitflow_net_bytes_in_total",
                "Request bytes read off the wire.",
                sv.net_bytes_in,
            ),
            (
                "bitflow_net_bytes_out_total",
                "Response bytes written to the wire.",
                sv.net_bytes_out,
            ),
            (
                "bitflow_net_accept_errors_total",
                "Accept-loop accept(2) errors (descriptor exhaustion included).",
                sv.govern.net_accept_errors,
            ),
            (
                "bitflow_net_spawn_sheds_total",
                "Connections shed because a handler thread could not be spawned.",
                sv.govern.net_spawn_sheds,
            ),
        ];
        for (name, help, value) in net_counters {
            family(
                &mut s,
                name,
                help,
                "counter",
                vec![(mlab.clone(), value.to_string())],
            );
        }

        let mem_gauges: [(&str, &str, u64); 3] = [
            (
                "bitflow_mem_used_bytes",
                "Bytes currently held by live memory leases.",
                sv.govern.mem_used_bytes,
            ),
            (
                "bitflow_mem_budget_bytes",
                "The resource governor's global byte budget (0 = unbudgeted).",
                sv.govern.mem_budget_bytes,
            ),
            (
                "bitflow_mem_leases",
                "Live memory leases outstanding.",
                sv.govern.mem_leases,
            ),
        ];
        for (name, help, value) in mem_gauges {
            family(
                &mut s,
                name,
                help,
                "gauge",
                vec![(mlab.clone(), value.to_string())],
            );
        }
        family(
            &mut s,
            "bitflow_degradation_state",
            "Brownout state machine: 0 Normal, 1 Brownout, 2 Shed.",
            "gauge",
            vec![(mlab.clone(), sv.govern.degradation_state.to_string())],
        );

        s
    }
}

#[cfg(test)]
mod tests {
    use crate::snapshot::{
        BatchSnapshot, GovernSnapshot, HistBucket, MachineSnapshot, MetricsSnapshot, OpBound,
        OpSnapshot, PerfSnapshot, ServeSnapshot, SizeBucket, StageSnapshot, SCHEMA_VERSION,
    };
    use crate::OpKind;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            model: "small-cnn".to_string(),
            requests: 8,
            machine: MachineSnapshot {
                features: "sse2+avx2".to_string(),
                simd_width_bits: 256,
                logical_cores: 2,
                freq_ghz: 2.1,
                freq_source: "cpuinfo".to_string(),
                peak_gops: 2150.4,
                peak_gb_per_s: 11.5,
                bw_source: "measured".to_string(),
            },
            perf: PerfSnapshot::unavailable("no PMU"),
            ops: vec![OpSnapshot {
                name: "conv1".to_string(),
                kind: OpKind::Conv,
                calls: 8,
                total_ns: 8_000,
                mean_ns: 1_000.0,
                max_ns: 1_500,
                p50_ns: 1_008,
                p95_ns: 1_488,
                p99_ns: 1_488,
                bit_ops_per_call: 1_000_000,
                bytes_read_per_call: 4_096,
                bytes_written_per_call: 1_024,
                gops: 1_000.0,
                gb_per_s: 5.12,
                pct_of_peak_compute: 46.5,
                pct_of_peak_bandwidth: 44.5,
                bound: OpBound::Compute,
                hist: vec![
                    HistBucket {
                        le_ns: 1_023,
                        count: 5,
                    },
                    HistBucket {
                        le_ns: 1_535,
                        count: 3,
                    },
                ],
                tile: None,
            }],
            batch: BatchSnapshot::default(),
            serve: ServeSnapshot {
                submitted: 20,
                accepted: 17,
                completed: 12,
                failed: 1,
                rejected_queue_full: 2,
                rejected_shedding: 1,
                rejected_draining: 0,
                rejected_quota: 3,
                shed_deadline: 2,
                deadline_missed: 1,
                cancelled: 1,
                worker_panics: 1,
                worker_restarts: 1,
                breaker_trips: 1,
                queue_depth: 3,
                queue_depth_max: 6,
                batches: 6,
                batch_items: 14,
                batch_size_max: 4,
                batch_size_hist: vec![
                    SizeBucket { le: 1, count: 2 },
                    SizeBucket { le: 4, count: 4 },
                ],
                net_accepted_conns: 9,
                net_rejected_conns: 2,
                net_timeouts_read: 4,
                net_timeouts_write: 1,
                net_malformed_requests: 5,
                net_bytes_in: 123_456,
                net_bytes_out: 65_432,
                govern: GovernSnapshot {
                    rejected_memory: 4,
                    net_accept_errors: 3,
                    net_spawn_sheds: 2,
                    mem_used_bytes: 2_097_152,
                    mem_budget_bytes: 8_388_608,
                    mem_leases: 5,
                    degradation_state: 2,
                },
                stage_queue_wait: StageSnapshot {
                    count: 12,
                    total_ns: 48_000,
                    buckets: vec![
                        HistBucket {
                            le_ns: 2_047,
                            count: 7,
                        },
                        HistBucket {
                            le_ns: 8_191,
                            count: 5,
                        },
                    ],
                },
                stage_batch_wait: StageSnapshot {
                    count: 12,
                    total_ns: 6_000,
                    buckets: vec![HistBucket {
                        le_ns: 1_023,
                        count: 12,
                    }],
                },
                stage_exec: StageSnapshot {
                    count: 12,
                    total_ns: 96_000,
                    buckets: vec![HistBucket {
                        le_ns: 16_383,
                        count: 12,
                    }],
                },
                stage_write: StageSnapshot::default(),
            },
        }
    }

    #[test]
    fn exposition_has_headers_and_series() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_requests_total counter"));
        assert!(text.contains("bitflow_requests_total{model=\"small-cnn\"} 8"));
        assert!(text
            .contains("bitflow_op_calls_total{model=\"small-cnn\",op=\"conv1\",kind=\"conv\"} 8"));
        assert!(text.contains("# TYPE bitflow_op_latency_ns histogram"));
        assert!(text.contains("le=\"+Inf\"} 8"));
        assert!(text.contains("bitflow_op_latency_ns_sum"));
        assert!(text.contains("bitflow_op_latency_ns_count"));
        assert!(text.contains("status=\"unavailable: no PMU\"} 0"));
        // Unavailable counters are absent, not zero.
        assert!(!text.contains("bitflow_perf_cycles_total{"));
    }

    #[test]
    fn serve_families_render() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_serve_submitted_total counter"));
        assert!(text.contains("bitflow_serve_submitted_total{model=\"small-cnn\"} 20"));
        assert!(text.contains("bitflow_serve_accepted_total{model=\"small-cnn\"} 17"));
        assert!(text
            .contains("bitflow_serve_rejected_total{model=\"small-cnn\",reason=\"queue_full\"} 2"));
        assert!(text
            .contains("bitflow_serve_rejected_total{model=\"small-cnn\",reason=\"shedding\"} 1"));
        assert!(text
            .contains("bitflow_serve_rejected_total{model=\"small-cnn\",reason=\"draining\"} 0"));
        assert!(text.contains("# TYPE bitflow_serve_queue_depth gauge"));
        assert!(text.contains("bitflow_serve_queue_depth{model=\"small-cnn\"} 3"));
        assert!(text.contains("bitflow_serve_queue_depth_max{model=\"small-cnn\"} 6"));
        assert!(text.contains("bitflow_serve_breaker_trips_total{model=\"small-cnn\"} 1"));
        assert!(
            text.contains("bitflow_serve_rejected_total{model=\"small-cnn\",reason=\"quota\"} 3")
        );
        assert!(
            text.contains("bitflow_serve_rejected_total{model=\"small-cnn\",reason=\"memory\"} 4")
        );
    }

    #[test]
    fn governance_families_render() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_mem_used_bytes gauge"));
        assert!(text.contains("bitflow_mem_used_bytes{model=\"small-cnn\"} 2097152"));
        assert!(text.contains("bitflow_mem_budget_bytes{model=\"small-cnn\"} 8388608"));
        assert!(text.contains("bitflow_mem_leases{model=\"small-cnn\"} 5"));
        assert!(text.contains("# TYPE bitflow_degradation_state gauge"));
        assert!(text.contains("bitflow_degradation_state{model=\"small-cnn\"} 2"));
        assert!(text.contains("# TYPE bitflow_net_accept_errors_total counter"));
        assert!(text.contains("bitflow_net_accept_errors_total{model=\"small-cnn\"} 3"));
        assert!(text.contains("bitflow_net_spawn_sheds_total{model=\"small-cnn\"} 2"));
    }

    #[test]
    fn net_families_render() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_net_accepted_conns_total counter"));
        assert!(text.contains("bitflow_net_accepted_conns_total{model=\"small-cnn\"} 9"));
        assert!(text.contains("bitflow_net_rejected_conns_total{model=\"small-cnn\"} 2"));
        assert!(text.contains("bitflow_net_timeouts_read_total{model=\"small-cnn\"} 4"));
        assert!(text.contains("bitflow_net_timeouts_write_total{model=\"small-cnn\"} 1"));
        assert!(text.contains("bitflow_net_malformed_requests_total{model=\"small-cnn\"} 5"));
        assert!(text.contains("bitflow_net_bytes_in_total{model=\"small-cnn\"} 123456"));
        assert!(text.contains("bitflow_net_bytes_out_total{model=\"small-cnn\"} 65432"));
    }

    #[test]
    fn batch_size_histogram_is_cumulative_with_inf_terminator() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_serve_batch_size histogram"));
        assert!(text.contains("bitflow_serve_batch_size{model=\"small-cnn\",le=\"1\"} 2"));
        assert!(text.contains("bitflow_serve_batch_size{model=\"small-cnn\",le=\"4\"} 6"));
        assert!(text.contains("bitflow_serve_batch_size{model=\"small-cnn\",le=\"+Inf\"} 6"));
        assert!(text.contains("bitflow_serve_batch_size_sum{model=\"small-cnn\"} 14"));
        assert!(text.contains("bitflow_serve_batch_size_count{model=\"small-cnn\"} 6"));
        assert!(text.contains("bitflow_serve_batch_size_max{model=\"small-cnn\"} 4"));
    }

    #[test]
    fn stage_histograms_render_cumulative_with_inf_terminator() {
        let text = snap().to_prometheus();
        assert!(text.contains("# TYPE bitflow_stage_queue_wait_ns histogram"));
        assert!(text.contains("bitflow_stage_queue_wait_ns{model=\"small-cnn\",le=\"2047\"} 7"));
        assert!(text.contains("bitflow_stage_queue_wait_ns{model=\"small-cnn\",le=\"8191\"} 12"));
        assert!(text.contains("bitflow_stage_queue_wait_ns{model=\"small-cnn\",le=\"+Inf\"} 12"));
        assert!(text.contains("bitflow_stage_queue_wait_ns_sum{model=\"small-cnn\"} 48000"));
        assert!(text.contains("bitflow_stage_queue_wait_ns_count{model=\"small-cnn\"} 12"));
        assert!(text.contains("# TYPE bitflow_stage_batch_wait_ns histogram"));
        assert!(text.contains("# TYPE bitflow_stage_exec_ns histogram"));
        assert!(text.contains("bitflow_stage_exec_ns_sum{model=\"small-cnn\"} 96000"));
        // An idle stage still renders an empty histogram with +Inf = 0.
        assert!(text.contains("bitflow_stage_write_ns{model=\"small-cnn\",le=\"+Inf\"} 0"));
        assert!(text.contains("bitflow_stage_write_ns_count{model=\"small-cnn\"} 0"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = snap().to_prometheus();
        let c1023 = text
            .lines()
            .find(|l| l.contains("le=\"1023\""))
            .expect("first bucket");
        let c1535 = text
            .lines()
            .find(|l| l.contains("le=\"1535\""))
            .expect("second bucket");
        assert!(c1023.ends_with(" 5"), "{c1023}");
        assert!(c1535.ends_with(" 8"), "{c1535}");
    }

    #[test]
    fn label_escaping() {
        let mut s = snap();
        s.model = "a\"b\\c\nd".to_string();
        let text = s.to_prometheus();
        assert!(text.contains("model=\"a\\\"b\\\\c\\nd\""));
    }
}
