//! The flight recorder: an always-on, bounded, tail-sampled trace store.
//!
//! Every finished [`RequestTrace`] is *offered* to the recorder; the
//! recorder decides what is worth keeping under a hard byte budget:
//!
//! * **Every non-ok trace is retained** — errors, rejections, deadline
//!   misses, truncated writes. These are the traces an operator pages on.
//! * **Ok traces are tail-sampled**: within each window of
//!   [`RecorderConfig::window`] consecutive ok traces, only the slowest
//!   [`RecorderConfig::slow_per_window`] survive. The boring middle of the
//!   latency distribution is dropped at the door, so a recorder dump reads
//!   as "everything that went wrong, plus the worst of what went right".
//! * **The byte budget is absolute**: when retained traces exceed
//!   [`RecorderConfig::max_bytes`] (estimated analytically, no
//!   serialization on the hot path), the oldest retained traces are
//!   evicted — error traces included, because a bounded recorder that can
//!   grow without bound on an error storm is not bounded.
//!
//! The recorder is deliberately *not* a [`crate::SpanSink`]: sinks receive
//! engine-level traces inside `try_infer`, before the serving stages
//! exist. The recorder instead receives finished request-scoped traces
//! from the serving runtime / network front-end, after the write stage.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

use crate::span::RequestTrace;

/// Flight-recorder sizing and sampling policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// How many of the slowest ok traces to retain per window.
    pub slow_per_window: usize,
    /// Window length, in ok traces, over which the slow-N selection runs.
    pub window: usize,
    /// Hard budget for retained traces, in estimated bytes.
    pub max_bytes: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            slow_per_window: 4,
            window: 64,
            max_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Cheap occupancy counters, readable while the recorder is live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Traces offered to the recorder.
    pub offered: u64,
    /// Traces retained (still held or since evicted by the byte budget).
    pub retained: u64,
    /// Ok traces dropped by tail sampling.
    pub dropped: u64,
    /// Retained traces evicted to stay under the byte budget.
    pub evicted: u64,
    /// Estimated bytes currently held.
    pub bytes: u64,
    /// The configured byte budget.
    pub max_bytes: u64,
}

struct RecorderInner {
    /// Retained traces, oldest first, each with its byte estimate.
    ring: VecDeque<(usize, RequestTrace)>,
    /// Estimated bytes across `ring`.
    bytes: usize,
    /// Ok traces seen in the current sampling window.
    window_seen: usize,
    /// The slowest-so-far candidates of the current window (≤ slow_per_window).
    window_best: Vec<RequestTrace>,
}

/// See the module docs. Shared as `Arc<FlightRecorder>` between the
/// serving runtime (which offers traces) and the network front-end (which
/// dumps them over `/debug/trace`).
pub struct FlightRecorder {
    cfg: RecorderConfig,
    inner: Mutex<RecorderInner>,
    offered: AtomicU64,
    retained: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Analytic size estimate of one trace: field scalars plus the per-span
/// and per-string payloads. Intentionally an over-estimate of the in-memory
/// footprint's variable part so the byte budget errs on the safe side
/// without serializing anything.
fn approx_bytes(t: &RequestTrace) -> usize {
    let strings = t.id.len() + t.tenant.len() + t.outcome.len();
    let stages = t.stages.len() * std::mem::size_of::<crate::span::StageSpan>();
    let spans: usize = t
        .spans
        .iter()
        .map(|s| std::mem::size_of::<crate::span::OpSpan>() + s.name.len())
        .sum();
    std::mem::size_of::<RequestTrace>() + strings + stages + spans + 64
}

impl FlightRecorder {
    /// A recorder with the given policy.
    #[must_use]
    pub fn new(cfg: RecorderConfig) -> Self {
        let cfg = RecorderConfig {
            slow_per_window: cfg.slow_per_window,
            window: cfg.window.max(1),
            max_bytes: cfg.max_bytes.max(1024),
        };
        Self {
            cfg,
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::new(),
                bytes: 0,
                window_seen: 0,
                window_best: Vec::new(),
            }),
            offered: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Builds a recorder from the environment, shared-ready. `None` unless
    /// `BITFLOW_TRACE=1` (or `true`/`on`/`yes`). `BITFLOW_TRACE_SAMPLE`
    /// overrides the slow-N per window, `BITFLOW_TRACE_BYTES` the byte
    /// budget; malformed values keep the defaults — tracing configuration
    /// must never take the server down.
    #[must_use]
    pub fn from_env() -> Option<Arc<Self>> {
        let raw = std::env::var("BITFLOW_TRACE").ok()?;
        let on = matches!(raw.trim(), "1" | "true" | "on" | "yes");
        if !on {
            return None;
        }
        let mut cfg = RecorderConfig::default();
        if let Some(n) = env_usize("BITFLOW_TRACE_SAMPLE") {
            cfg.slow_per_window = n;
        }
        if let Some(n) = env_usize("BITFLOW_TRACE_BYTES") {
            cfg.max_bytes = n;
        }
        Some(Arc::new(Self::new(cfg)))
    }

    /// The active policy.
    #[must_use]
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Offers one finished trace. Non-ok traces are always retained; ok
    /// traces compete for the slowest-N slots of the current window.
    pub fn offer(&self, trace: RequestTrace) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let mut g = self.lock();
        if trace.is_ok() {
            g.window_seen += 1;
            if self.cfg.slow_per_window == 0 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else if g.window_best.len() < self.cfg.slow_per_window {
                g.window_best.push(trace);
            } else {
                // Replace the fastest candidate if this trace is slower.
                let (min_idx, min_ns) = g
                    .window_best
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (i, t.total_ns))
                    .min_by_key(|&(_, ns)| ns)
                    .unwrap_or((0, 0));
                if trace.total_ns > min_ns {
                    let loser = std::mem::replace(&mut g.window_best[min_idx], trace);
                    drop(loser);
                }
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            if g.window_seen >= self.cfg.window {
                let best = std::mem::take(&mut g.window_best);
                g.window_seen = 0;
                for t in best {
                    self.retain(&mut g, t);
                }
            }
        } else {
            self.retain(&mut g, trace);
        }
    }

    fn retain(&self, g: &mut RecorderInner, trace: RequestTrace) {
        let sz = approx_bytes(&trace);
        g.ring.push_back((sz, trace));
        g.bytes += sz;
        self.retained.fetch_add(1, Ordering::Relaxed);
        while g.bytes > self.cfg.max_bytes {
            match g.ring.pop_front() {
                Some((evicted_sz, _)) => {
                    g.bytes -= evicted_sz;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// All retained traces plus the current window's candidates, oldest
    /// retained first. A snapshot: the recorder keeps running.
    #[must_use]
    pub fn dump(&self) -> Vec<RequestTrace> {
        let g = self.lock();
        g.ring
            .iter()
            .map(|(_, t)| t.clone())
            .chain(g.window_best.iter().cloned())
            .collect()
    }

    /// The most recent retained (or candidate) trace with the given wire
    /// id.
    #[must_use]
    pub fn find(&self, id: &str) -> Option<RequestTrace> {
        let g = self.lock();
        g.window_best
            .iter()
            .rev()
            .chain(g.ring.iter().rev().map(|(_, t)| t))
            .find(|t| t.id == id)
            .cloned()
    }

    /// Estimated bytes currently held (retained ring only; the ≤ slow-N
    /// window candidates are bounded by policy, not bytes).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Occupancy counters.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            offered: self.offered.load(Ordering::Relaxed),
            retained: self.retained.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            bytes: self.bytes() as u64,
            max_bytes: self.cfg.max_bytes as u64,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpSpan, RequestTrace};

    fn trace(id: &str, outcome: &str, total_ns: u64) -> RequestTrace {
        let mut t = RequestTrace::new(0, total_ns, Vec::new());
        t.id = id.to_string();
        t.outcome = outcome.to_string();
        t
    }

    #[test]
    fn errors_are_always_retained_ok_is_tail_sampled() {
        let rec = FlightRecorder::new(RecorderConfig {
            slow_per_window: 2,
            window: 8,
            max_bytes: 1 << 20,
        });
        // One full window: 8 ok traces of increasing latency, plus errors.
        for i in 0..8u64 {
            rec.offer(trace(&format!("ok-{i}"), "ok", 1_000 * (i + 1)));
        }
        rec.offer(trace("boom", "error:internal", 10));
        rec.offer(trace("shed", "rejected:queue_full", 10));
        let dump = rec.dump();
        let ids: Vec<&str> = dump.iter().map(|t| t.id.as_str()).collect();
        // The two slowest of the window survive; every error survives.
        assert!(ids.contains(&"ok-6") && ids.contains(&"ok-7"), "{ids:?}");
        assert!(ids.contains(&"boom") && ids.contains(&"shed"), "{ids:?}");
        assert!(!ids.contains(&"ok-0"), "fast ok traces must be dropped");
        assert!(rec.find("boom").is_some());
        assert!(rec.find("ok-0").is_none());
        let stats = rec.stats();
        assert_eq!(stats.offered, 10);
        assert_eq!(stats.dropped, 6);
    }

    #[test]
    fn partial_window_candidates_are_visible_in_dump() {
        let rec = FlightRecorder::new(RecorderConfig {
            slow_per_window: 2,
            window: 100,
            max_bytes: 1 << 20,
        });
        rec.offer(trace("a", "ok", 5));
        rec.offer(trace("b", "ok", 50));
        rec.offer(trace("c", "ok", 1));
        let ids: Vec<String> = rec.dump().into_iter().map(|t| t.id).collect();
        assert!(ids.contains(&"a".to_string()) && ids.contains(&"b".to_string()));
        assert!(rec.find("b").is_some(), "candidates are findable");
    }

    #[test]
    fn byte_budget_evicts_oldest_and_never_exceeds() {
        let mut big = trace("x", "error:internal", 1);
        big.spans = (0..32)
            .map(|i| OpSpan {
                op_index: i,
                name: "a-rather-long-operator-name".to_string(),
                start_ns: 0,
                duration_ns: 1,
            })
            .collect();
        let one = approx_bytes(&big);
        let rec = FlightRecorder::new(RecorderConfig {
            slow_per_window: 0,
            window: 1,
            max_bytes: one * 3,
        });
        for i in 0..50u64 {
            let mut t = big.clone();
            t.id = format!("e-{i}");
            rec.offer(t);
            assert!(
                rec.bytes() <= one * 3,
                "budget exceeded at {i}: {} > {}",
                rec.bytes(),
                one * 3
            );
        }
        let stats = rec.stats();
        assert!(stats.evicted > 0, "old errors must be evicted");
        // The newest errors survive.
        assert!(rec.find("e-49").is_some());
        assert!(rec.find("e-0").is_none());
    }

    #[test]
    fn from_env_is_gated_and_tolerates_garbage() {
        // Not set → None. (Other tests may run in parallel; use the
        // documented parse path directly rather than mutating the global
        // environment.)
        assert!(std::env::var("BITFLOW_TRACE").is_err() || FlightRecorder::from_env().is_some());
        let rec = FlightRecorder::new(RecorderConfig::default());
        assert_eq!(rec.config().slow_per_window, 4);
        assert_eq!(rec.config().window, 64);
    }
}
