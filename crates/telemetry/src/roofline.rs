//! Roofline model: how close each operator runs to the machine's peaks.
//!
//! The paper reports speedups relative to a float baseline; a roofline
//! additionally says how much headroom is *left*. Two ceilings bound any
//! kernel:
//!
//! * **Compute roof** — theoretical xor+popcount throughput. One SIMD lane
//!   sweep evaluates `width` bit positions with one xor and one
//!   popcount-accumulate, i.e. 2 bit-ops per position per cycle if the
//!   pipeline issued one fused pair per cycle:
//!   `peak_gops = 2 × simd_width_bits × freq_GHz × cores`.
//!   This is deliberately optimistic (real cores need extra instructions
//!   for loads and reduction), which keeps `pct_of_peak_compute` a
//!   conservative "you are at most this efficient" number.
//! * **Bandwidth roof** — measured once per process with a streaming
//!   read of a 16 MiB buffer (far beyond L2, usually beyond L3 slices),
//!   overridable with `BITFLOW_PEAK_BW_GBPS` for machines where the
//!   measurement is known-bad (noisy neighbours, tiny containers).
//!
//! An operator achieving a higher fraction of the compute roof than of the
//! bandwidth roof is **compute-bound**, otherwise **memory-bound**; an
//! operator with no recorded calls is **idle**.

use std::sync::OnceLock;

use bitflow_simd::{machine, FreqSource, MachineInfo};

use crate::snapshot::{MachineSnapshot, MetricsSnapshot, OpBound, OpSnapshot};

/// Where the bandwidth roof came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BwSource {
    /// Streaming-read measurement on this process.
    Measured,
    /// `BITFLOW_PEAK_BW_GBPS` override.
    Env,
}

/// The machine's two roofline ceilings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roofline {
    /// Hardware the peaks were derived from.
    pub machine: MachineInfo,
    /// Peak xor+popcount throughput, GOPS.
    pub peak_gops: f64,
    /// Peak streaming bandwidth, GB/s.
    pub peak_gb_per_s: f64,
    /// Where the bandwidth number came from.
    pub bw_source: BwSource,
}

impl Roofline {
    /// Builds the roofline from an explicit machine description and
    /// bandwidth peak (used by tests; production code calls [`current`]).
    pub fn from_parts(machine: MachineInfo, peak_gb_per_s: f64, bw_source: BwSource) -> Self {
        let width = machine.features.max_width_bits() as f64;
        let peak_gops = 2.0 * width * machine.freq_ghz * machine.logical_cores as f64;
        Self {
            machine,
            peak_gops,
            peak_gb_per_s,
            bw_source,
        }
    }

    /// Detects the running machine's roofline. Expensive on first call
    /// (frequency estimate + bandwidth sweep); use [`current`] for the
    /// cached copy.
    pub fn detect() -> Self {
        let (bw, src) = match env_bw_override() {
            Some(bw) => (bw, BwSource::Env),
            None => (measure_stream_gb_per_s(), BwSource::Measured),
        };
        Self::from_parts(machine(), bw, src)
    }

    /// Flattens into the serializable form embedded in snapshots.
    pub fn to_snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            features: self.machine.features.to_string(),
            simd_width_bits: self.machine.features.max_width_bits() as u64,
            logical_cores: self.machine.logical_cores as u64,
            freq_ghz: self.machine.freq_ghz,
            freq_source: match self.machine.freq_source {
                FreqSource::Cpuinfo => "cpuinfo",
                FreqSource::Calibrated => "calibrated",
                FreqSource::Assumed => "assumed",
            }
            .to_string(),
            peak_gops: self.peak_gops,
            peak_gb_per_s: self.peak_gb_per_s,
            bw_source: match self.bw_source {
                BwSource::Measured => "measured",
                BwSource::Env => "env",
            }
            .to_string(),
        }
    }

    /// Fills one operator row's roofline fields from its achieved rates.
    pub fn annotate_op(&self, op: &mut OpSnapshot) {
        if op.calls == 0 || op.total_ns == 0 {
            op.pct_of_peak_compute = 0.0;
            op.pct_of_peak_bandwidth = 0.0;
            op.bound = OpBound::Idle;
            return;
        }
        op.pct_of_peak_compute = if self.peak_gops > 0.0 {
            100.0 * op.gops / self.peak_gops
        } else {
            0.0
        };
        op.pct_of_peak_bandwidth = if self.peak_gb_per_s > 0.0 {
            100.0 * op.gb_per_s / self.peak_gb_per_s
        } else {
            0.0
        };
        op.bound = if op.pct_of_peak_compute >= op.pct_of_peak_bandwidth {
            OpBound::Compute
        } else {
            OpBound::Memory
        };
    }

    /// Annotates every operator row and stamps the machine block.
    pub fn annotate(&self, snap: &mut MetricsSnapshot) {
        snap.machine = self.to_snapshot();
        for op in &mut snap.ops {
            self.annotate_op(op);
        }
    }
}

/// Process-wide cached roofline (machine detection and the bandwidth sweep
/// run once).
pub fn current() -> Roofline {
    static CACHE: OnceLock<Roofline> = OnceLock::new();
    *CACHE.get_or_init(Roofline::detect)
}

fn env_bw_override() -> Option<f64> {
    let v = std::env::var("BITFLOW_PEAK_BW_GBPS").ok()?;
    let bw: f64 = v.trim().parse().ok()?;
    (bw > 0.0).then_some(bw)
}

/// Best-of-3 streaming read of a 16 MiB `u64` buffer, single-threaded.
/// Single-threaded is the honest roof for this engine: inference requests
/// run one thread per request chunk, so per-operator `gb_per_s` is also a
/// (mostly) single-stream number.
fn measure_stream_gb_per_s() -> f64 {
    use std::time::Instant;
    const WORDS: usize = 2 * 1024 * 1024; // 16 MiB
    let buf: Vec<u64> = (0..WORDS as u64).collect();
    let bytes = (WORDS * 8) as f64;
    let mut best = f64::INFINITY;
    let mut sum = 0u64;
    for _ in 0..3 {
        let t0 = Instant::now();
        for &w in &buf {
            sum = sum.wrapping_add(w);
        }
        std::hint::black_box(sum);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    if best <= 0.0 || !best.is_finite() {
        return 0.0;
    }
    bytes / best / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitflow_simd::HwFeatures;

    fn test_machine() -> MachineInfo {
        MachineInfo {
            features: HwFeatures {
                sse2: true,
                ssse3: true,
                popcnt: true,
                avx2: true,
                avx512f: false,
                avx512bw: false,
                avx512vpopcntdq: false,
            },
            logical_cores: 4,
            freq_ghz: 2.0,
            freq_source: FreqSource::Cpuinfo,
        }
    }

    fn op(calls: u64, total_ns: u64, gops: f64, gb_per_s: f64) -> OpSnapshot {
        OpSnapshot {
            name: "op".to_string(),
            kind: crate::metrics::OpKind::Conv,
            calls,
            total_ns,
            mean_ns: 0.0,
            max_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            bit_ops_per_call: 0,
            bytes_read_per_call: 0,
            bytes_written_per_call: 0,
            gops,
            gb_per_s,
            pct_of_peak_compute: -1.0,
            pct_of_peak_bandwidth: -1.0,
            bound: OpBound::Idle,
            hist: vec![],
            tile: None,
        }
    }

    #[test]
    fn peak_formula() {
        // 2 × 256 bits × 2.0 GHz × 4 cores = 4096 GOPS.
        let r = Roofline::from_parts(test_machine(), 10.0, BwSource::Env);
        assert!((r.peak_gops - 4096.0).abs() < 1e-9, "{}", r.peak_gops);
        assert_eq!(r.peak_gb_per_s, 10.0);
    }

    #[test]
    fn verdicts() {
        let r = Roofline::from_parts(test_machine(), 10.0, BwSource::Env);
        // 50% of compute peak, 10% of bandwidth peak → compute-bound.
        let mut compute = op(4, 1_000, 2048.0, 1.0);
        r.annotate_op(&mut compute);
        assert!((compute.pct_of_peak_compute - 50.0).abs() < 1e-9);
        assert!((compute.pct_of_peak_bandwidth - 10.0).abs() < 1e-9);
        assert_eq!(compute.bound, OpBound::Compute);
        // 1% of compute peak, 80% of bandwidth peak → memory-bound.
        let mut memory = op(4, 1_000, 40.96, 8.0);
        r.annotate_op(&mut memory);
        assert_eq!(memory.bound, OpBound::Memory);
        // No calls → idle, percentages zeroed.
        let mut idle = op(0, 0, 0.0, 0.0);
        r.annotate_op(&mut idle);
        assert_eq!(idle.bound, OpBound::Idle);
        assert_eq!(idle.pct_of_peak_compute, 0.0);
    }

    #[test]
    fn machine_snapshot_is_flat_and_labelled() {
        let r = Roofline::from_parts(test_machine(), 10.0, BwSource::Env);
        let m = r.to_snapshot();
        assert_eq!(m.simd_width_bits, 256);
        assert_eq!(m.logical_cores, 4);
        assert_eq!(m.freq_source, "cpuinfo");
        assert_eq!(m.bw_source, "env");
        assert!(m.features.contains("avx2"));
    }

    #[test]
    fn current_is_cached_and_positive() {
        let a = current();
        let b = current();
        assert_eq!(a, b);
        assert!(a.peak_gops > 0.0);
        assert!(a.peak_gb_per_s > 0.0, "bw {}", a.peak_gb_per_s);
    }
}
