//! Serializable point-in-time copies of the live telemetry state.
//!
//! Snapshots carry plain integers and floats only — they round-trip
//! through `serde_json` and are what the bench bins write to
//! `results/telemetry.json`.

use serde::{Deserialize, Serialize};

use crate::metrics::{OpKind, TileStats};

/// Schema version written into every [`MetricsSnapshot`] (and, via the
/// bench crate, every `results/*.json` artifact). v1 was the PR-3 snapshot
/// without roofline, machine, or perf-counter fields; v2 added them; v3
/// added the serving-runtime counters ([`ServeSnapshot`]); v4 added the
/// multi-model tenancy counters (quota rejections) and the served
/// micro-batch-size histogram; v5 added the network front-end counters
/// (`net_*`: connections, timeouts, malformed requests, byte totals);
/// v6 added the request-lifecycle stage histograms
/// ([`StageSnapshot`]: queue-wait, batch-wait, exec, write);
/// v7 added the resource-governance counters ([`GovernSnapshot`]:
/// memory-pressure rejections, byte-budget gauges, degradation state,
/// accept-error and spawn-shed counters).
/// Readers must refuse to overwrite files written by a *newer* schema.
pub const SCHEMA_VERSION: u32 = 7;

/// Upper edges of the served-batch-size histogram buckets. Batches larger
/// than the last edge land in the implicit overflow bucket
/// (`le == u64::MAX` in [`SizeBucket`] terms).
pub const BATCH_SIZE_EDGES: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// One non-empty batch-size-histogram bucket: `count` served micro-batches
/// of `≤ le` requests (and more than the previous bucket's edge). Sparse
/// and non-cumulative, like [`HistBucket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeBucket {
    /// Inclusive upper edge of the bucket (requests per batch);
    /// `u64::MAX` marks the overflow bucket.
    pub le: u64,
    /// Batches that landed in this bucket.
    pub count: u64,
}

/// One non-empty latency-histogram bucket: `count` samples with values
/// `≤ le_ns` (and greater than the previous bucket's edge). Sparse — only
/// occupied buckets are stored — and non-cumulative; the Prometheus
/// exporter accumulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Inclusive upper edge of the bucket, nanoseconds.
    pub le_ns: u64,
    /// Samples that landed in this bucket.
    pub count: u64,
}

/// One request-lifecycle stage's latency distribution: how many requests
/// passed through the stage, the summed nanoseconds, and the occupied
/// histogram buckets (sparse, non-cumulative, same bucketing as
/// [`HistBucket`] op histograms). Always on — the serving runtime records
/// these whether or not tracing is enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StageSnapshot {
    /// Requests that passed through the stage.
    pub count: u64,
    /// Summed stage time, nanoseconds.
    pub total_ns: u64,
    /// Occupied latency-histogram buckets (sparse, non-cumulative).
    pub buckets: Vec<HistBucket>,
}

// Manual impl so a v5 snapshot missing the stage fields (which the
// vendored serde surfaces as `Null`) reads back as an empty stage — the
// vendored derive has no `#[serde(default)]`.
impl Deserialize for StageSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            count: Deserialize::from_value(v.field("count")?)?,
            total_ns: Deserialize::from_value(v.field("total_ns")?)?,
            buckets: Deserialize::from_value(v.field("buckets")?)?,
        })
    }
}

/// Resource-governance counters and gauges: the memory-budget and
/// degradation-state face of the serving runtime, plus the accept-loop
/// failure counters. Grouped so a v6 snapshot (no `govern` key, surfaced
/// by the vendored serde as `Null`) reads back as all-zero defaults.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct GovernSnapshot {
    /// Submissions refused because a byte budget (global or per-tenant)
    /// could not cover the request.
    pub rejected_memory: u64,
    /// Accept-loop `accept(2)` errors (EMFILE/ENFILE descriptor
    /// exhaustion included).
    pub net_accept_errors: u64,
    /// Connections shed because their handler thread could not be
    /// spawned (counted apart from cap rejections).
    pub net_spawn_sheds: u64,
    /// Bytes currently held by live memory leases (gauge).
    pub mem_used_bytes: u64,
    /// The governor's global byte budget; 0 = unbudgeted (gauge).
    pub mem_budget_bytes: u64,
    /// Live memory leases outstanding (gauge).
    pub mem_leases: u64,
    /// Brownout state machine: 0 = Normal, 1 = Brownout, 2 = Shed (gauge).
    pub degradation_state: u64,
}

// Manual impl so a v6 snapshot missing the `govern` field reads back as
// zeroed governance counters — same pattern as [`StageSnapshot`].
impl Deserialize for GovernSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            rejected_memory: Deserialize::from_value(v.field("rejected_memory")?)?,
            net_accept_errors: Deserialize::from_value(v.field("net_accept_errors")?)?,
            net_spawn_sheds: Deserialize::from_value(v.field("net_spawn_sheds")?)?,
            mem_used_bytes: Deserialize::from_value(v.field("mem_used_bytes")?)?,
            mem_budget_bytes: Deserialize::from_value(v.field("mem_budget_bytes")?)?,
            mem_leases: Deserialize::from_value(v.field("mem_leases")?)?,
            degradation_state: Deserialize::from_value(v.field("degradation_state")?)?,
        })
    }
}

/// Roofline verdict for one operator: which peak it is closer to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpBound {
    /// Closer to peak xor+popcount throughput than to peak bandwidth.
    Compute,
    /// Closer to peak memory bandwidth.
    Memory,
    /// No calls recorded — nothing to attribute.
    Idle,
}

/// The machine the snapshot was taken on, plus its roofline peaks. Flat
/// strings/numbers so the schema is self-describing in JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// Detected ISA features, e.g. `"sse2+ssse3+popcnt+avx2"`.
    pub features: String,
    /// Widest usable xor+popcount path, bits.
    pub simd_width_bits: u64,
    /// Logical cores visible to the process.
    pub logical_cores: u64,
    /// Estimated sustained core frequency, GHz.
    pub freq_ghz: f64,
    /// Where the frequency came from: `"cpuinfo"`, `"calibrated"`, `"assumed"`.
    pub freq_source: String,
    /// Theoretical peak xor+popcount throughput, GOPS (2 bit-ops per
    /// evaluated position × SIMD width × frequency × cores).
    pub peak_gops: f64,
    /// Peak memory bandwidth used as the roofline's slanted ceiling, GB/s.
    pub peak_gb_per_s: f64,
    /// Where the bandwidth peak came from: `"measured"` or `"env"`.
    pub bw_source: String,
}

/// Hardware-counter totals accumulated across sampled requests.
///
/// The contract of the acceptance criteria: counter fields are populated
/// *or explicitly marked unavailable* — `status` always says which, and
/// `None` never silently means zero.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// `"ok"`, `"disabled"` (BITFLOW_PERF=0), or `"unavailable: <reason>"`.
    pub status: String,
    /// Requests the counter group was wrapped around.
    pub sampled_requests: u64,
    /// Total core cycles across sampled requests.
    pub cycles: Option<u64>,
    /// Total retired instructions across sampled requests.
    pub instructions: Option<u64>,
    /// Total last-level-cache misses, when the PMU granted the event.
    pub llc_misses: Option<u64>,
    /// Total mispredicted branches, when the PMU granted the event.
    pub branch_misses: Option<u64>,
    /// Instructions per cycle over all sampled requests.
    pub ipc: Option<f64>,
}

impl PerfSnapshot {
    /// A snapshot that explains why no counters were collected.
    pub fn unavailable(reason: &str) -> Self {
        Self {
            status: format!("unavailable: {reason}"),
            sampled_requests: 0,
            cycles: None,
            instructions: None,
            llc_misses: None,
            branch_misses: None,
            ipc: None,
        }
    }
}

/// Point-in-time counters for one operator, with derived percentiles and
/// rates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpSnapshot {
    /// Operator name (layer name or builtin step name).
    pub name: String,
    /// Operator category.
    pub kind: OpKind,
    /// Number of recorded calls.
    pub calls: u64,
    /// Sum of per-call wall times, nanoseconds.
    pub total_ns: u64,
    /// Mean per-call wall time, nanoseconds.
    pub mean_ns: f64,
    /// Maximum observed per-call wall time, nanoseconds (exact).
    pub max_ns: u64,
    /// Median per-call latency (histogram estimate, ≤6.25% relative error).
    pub p50_ns: u64,
    /// 95th-percentile per-call latency (histogram estimate).
    pub p95_ns: u64,
    /// 99th-percentile per-call latency (histogram estimate).
    pub p99_ns: u64,
    /// Effective xor+popcount bit-operations one call performs (static).
    pub bit_ops_per_call: u64,
    /// Bytes read per call (static).
    pub bytes_read_per_call: u64,
    /// Bytes written per call (static).
    pub bytes_written_per_call: u64,
    /// Sustained binary-op throughput: `bit_ops × calls / total_ns`, in
    /// giga-ops per second.
    pub gops: f64,
    /// Sustained memory traffic in GB/s (bytes moved / total time).
    pub gb_per_s: f64,
    /// Achieved share of the machine's peak xor+popcount throughput, in
    /// percent (`100 × gops / peak_gops`). 0 when idle.
    pub pct_of_peak_compute: f64,
    /// Achieved share of the machine's peak memory bandwidth, in percent.
    pub pct_of_peak_bandwidth: f64,
    /// Roofline verdict: compute-bound, memory-bound, or idle.
    pub bound: OpBound,
    /// Occupied latency-histogram buckets (sparse, non-cumulative).
    pub hist: Vec<HistBucket>,
    /// bgemm tile geometry for GEMM-backed operators.
    pub tile: Option<TileStats>,
}

/// Batch-serving counters from `try_infer_batch`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchSnapshot {
    /// Batches accepted.
    pub batches: u64,
    /// Items across all batches.
    pub items: u64,
    /// Items that returned an error.
    pub failed_items: u64,
    /// Per-thread chunks the batches were split into.
    pub chunks: u64,
    /// Largest single batch seen.
    pub max_batch: u64,
    /// Items in flight at snapshot time (0 when idle).
    pub queued_items: u64,
}

/// Serving-runtime counters from `bitflow-serve`: admission, shedding,
/// deadlines, and worker health. All zero for a model served without the
/// runtime.
///
/// Conservation law (checked by the soak test): `submitted` equals
/// `accepted` plus the four `rejected_*` counters, and — once the server
/// has drained — `accepted` equals `completed + failed + shed_deadline +
/// deadline_missed + cancelled`. In a multi-model server each model's
/// gauges obey the law independently.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Requests offered to `submit` (admitted or not).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests that completed with logits.
    pub completed: u64,
    /// Requests that resolved to a typed inference error (including
    /// caught worker panics).
    pub failed: u64,
    /// Submissions refused because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Submissions refused while the circuit breaker was shedding load.
    pub rejected_shedding: u64,
    /// Submissions refused while the server was draining for shutdown.
    pub rejected_draining: u64,
    /// Submissions refused because the target model's admission quota was
    /// exhausted (multi-model tenancy).
    pub rejected_quota: u64,
    /// Admitted requests dropped *before* running because their deadline
    /// budget was already unmeetable (deadline-aware shedding).
    pub shed_deadline: u64,
    /// Admitted requests cancelled *mid-run* by their deadline.
    pub deadline_missed: u64,
    /// Admitted requests cancelled by their caller.
    pub cancelled: u64,
    /// Panics caught and isolated inside workers.
    pub worker_panics: u64,
    /// Worker loops restarted after a panic escaped the per-request
    /// backstop.
    pub worker_restarts: u64,
    /// Circuit-breaker trips into the shedding state.
    pub breaker_trips: u64,
    /// Requests waiting in the admission queue right now (gauge).
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub queue_depth_max: u64,
    /// Coalesced micro-batches served (a batch of one is the unbatched
    /// fast path).
    pub batches: u64,
    /// Requests served across all micro-batches (`batch_items / batches`
    /// is the mean served batch size).
    pub batch_items: u64,
    /// Largest micro-batch served.
    pub batch_size_max: u64,
    /// Served-batch-size histogram over [`BATCH_SIZE_EDGES`] (sparse,
    /// non-cumulative; `le == u64::MAX` is the overflow bucket).
    pub batch_size_hist: Vec<SizeBucket>,
    /// TCP connections accepted by the network front-end.
    pub net_accepted_conns: u64,
    /// TCP connections refused at the accept loop (connection cap).
    pub net_rejected_conns: u64,
    /// Connections dropped because a read deadline expired (includes the
    /// slowloris header timeout).
    pub net_timeouts_read: u64,
    /// Connections dropped because a response write stalled past its
    /// deadline.
    pub net_timeouts_write: u64,
    /// Requests refused as malformed before reaching admission (bad
    /// request line, oversized headers or body, undecodable tensor).
    pub net_malformed_requests: u64,
    /// Request bytes read off the wire (headers + bodies).
    pub net_bytes_in: u64,
    /// Response bytes written to the wire (including partial writes).
    pub net_bytes_out: u64,
    /// Resource-governance counters and gauges (memory budgets, brownout
    /// state, accept-loop failures).
    pub govern: GovernSnapshot,
    /// Admission-queue wait distribution (enqueue → worker pop).
    pub stage_queue_wait: StageSnapshot,
    /// Batch-formation wait distribution (pop → micro-batch exec start:
    /// the coalescing window plus dispatch).
    pub stage_batch_wait: StageSnapshot,
    /// Engine execution distribution (per request, inside its batch).
    pub stage_exec: StageSnapshot,
    /// Response-write distribution (serialize + write to the wire).
    pub stage_write: StageSnapshot,
}

/// Everything a model's telemetry knows, frozen at one instant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Model name the telemetry was built for.
    pub model: String,
    /// Requests that have entered the engine (including in-flight).
    pub requests: u64,
    /// The machine and its roofline peaks.
    pub machine: MachineSnapshot,
    /// Hardware-counter totals (or why they are absent).
    pub perf: PerfSnapshot,
    /// One entry per operator, in execution order.
    pub ops: Vec<OpSnapshot>,
    /// Batch-serving counters.
    pub batch: BatchSnapshot,
    /// Serving-runtime counters (zero without `bitflow-serve`).
    pub serve: ServeSnapshot,
}

impl MetricsSnapshot {
    /// A snapshot carrying only serving-runtime counters, for exposing a
    /// model served without operator telemetry: no ops, no perf counters,
    /// and a zeroed machine section (building the real one would run the
    /// roofline bandwidth probe, far too expensive for a metrics scrape).
    pub fn serve_only(model: impl Into<String>, serve: ServeSnapshot) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            model: model.into(),
            requests: 0,
            machine: MachineSnapshot {
                features: String::new(),
                simd_width_bits: 0,
                logical_cores: 0,
                freq_ghz: 0.0,
                freq_source: "unavailable".to_string(),
                peak_gops: 0.0,
                peak_gb_per_s: 0.0,
                bw_source: "unavailable".to_string(),
            },
            perf: PerfSnapshot::unavailable("telemetry disabled"),
            ops: Vec::new(),
            batch: BatchSnapshot::default(),
            serve,
        }
    }

    /// Total time attributed to operators, nanoseconds.
    pub fn total_op_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.total_ns).sum()
    }

    /// The operator with the largest total time, if any time was recorded.
    pub fn hottest_op(&self) -> Option<&OpSnapshot> {
        self.ops
            .iter()
            .filter(|o| o.total_ns > 0)
            .max_by_key(|o| o.total_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: SCHEMA_VERSION,
            model: "vgg16".to_string(),
            requests: 3,
            machine: MachineSnapshot {
                features: "sse2+avx2".to_string(),
                simd_width_bits: 256,
                logical_cores: 4,
                freq_ghz: 2.1,
                freq_source: "cpuinfo".to_string(),
                peak_gops: 4300.8,
                peak_gb_per_s: 12.0,
                bw_source: "measured".to_string(),
            },
            perf: PerfSnapshot {
                status: "ok".to_string(),
                sampled_requests: 3,
                cycles: Some(6_300_000),
                instructions: Some(12_600_000),
                llc_misses: Some(1_024),
                branch_misses: None,
                ipc: Some(2.0),
            },
            ops: vec![
                OpSnapshot {
                    name: "conv1".to_string(),
                    kind: OpKind::Conv,
                    calls: 3,
                    total_ns: 3_000,
                    mean_ns: 1_000.0,
                    max_ns: 1_200,
                    p50_ns: 992,
                    p95_ns: 1_184,
                    p99_ns: 1_184,
                    bit_ops_per_call: 1_000_000,
                    bytes_read_per_call: 4_096,
                    bytes_written_per_call: 1_024,
                    gops: 1_000.0,
                    gb_per_s: 5.12,
                    pct_of_peak_compute: 23.25,
                    pct_of_peak_bandwidth: 42.67,
                    bound: OpBound::Memory,
                    hist: vec![
                        HistBucket {
                            le_ns: 1_023,
                            count: 2,
                        },
                        HistBucket {
                            le_ns: 1_215,
                            count: 1,
                        },
                    ],
                    tile: Some(TileStats {
                        m: 1024,
                        k: 64,
                        n_words: 9,
                        quads: 16,
                        tail: 0,
                        par_k_chunk: 32,
                    }),
                },
                OpSnapshot {
                    name: "pool1".to_string(),
                    kind: OpKind::Pool,
                    calls: 3,
                    total_ns: 600,
                    mean_ns: 200.0,
                    max_ns: 250,
                    p50_ns: 200,
                    p95_ns: 248,
                    p99_ns: 248,
                    bit_ops_per_call: 0,
                    bytes_read_per_call: 2_048,
                    bytes_written_per_call: 512,
                    gops: 0.0,
                    gb_per_s: 12.8,
                    pct_of_peak_compute: 0.0,
                    pct_of_peak_bandwidth: 100.0,
                    bound: OpBound::Memory,
                    hist: vec![HistBucket {
                        le_ns: 255,
                        count: 3,
                    }],
                    tile: None,
                },
            ],
            batch: BatchSnapshot {
                batches: 1,
                items: 3,
                failed_items: 0,
                chunks: 1,
                max_batch: 3,
                queued_items: 0,
            },
            serve: ServeSnapshot {
                submitted: 12,
                accepted: 9,
                completed: 6,
                failed: 1,
                rejected_queue_full: 2,
                rejected_shedding: 1,
                rejected_draining: 0,
                rejected_quota: 0,
                shed_deadline: 1,
                deadline_missed: 1,
                cancelled: 0,
                worker_panics: 1,
                worker_restarts: 1,
                breaker_trips: 0,
                queue_depth: 0,
                queue_depth_max: 4,
                batches: 4,
                batch_items: 7,
                batch_size_max: 3,
                batch_size_hist: vec![
                    SizeBucket { le: 1, count: 2 },
                    SizeBucket { le: 4, count: 2 },
                ],
                net_accepted_conns: 5,
                net_rejected_conns: 1,
                net_timeouts_read: 2,
                net_timeouts_write: 1,
                net_malformed_requests: 3,
                net_bytes_in: 40_960,
                net_bytes_out: 8_192,
                govern: GovernSnapshot {
                    rejected_memory: 2,
                    net_accept_errors: 1,
                    net_spawn_sheds: 1,
                    mem_used_bytes: 1_048_576,
                    mem_budget_bytes: 4_194_304,
                    mem_leases: 3,
                    degradation_state: 1,
                },
                stage_queue_wait: StageSnapshot {
                    count: 7,
                    total_ns: 70_000,
                    buckets: vec![HistBucket {
                        le_ns: 16_383,
                        count: 7,
                    }],
                },
                stage_batch_wait: StageSnapshot {
                    count: 7,
                    total_ns: 3_500,
                    buckets: vec![HistBucket {
                        le_ns: 511,
                        count: 7,
                    }],
                },
                stage_exec: StageSnapshot {
                    count: 7,
                    total_ns: 700_000,
                    buckets: vec![HistBucket {
                        le_ns: 131_071,
                        count: 7,
                    }],
                },
                stage_write: StageSnapshot::default(),
            },
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let snap = sample();
        let json = serde_json::to_string_pretty(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.model, snap.model);
        assert_eq!(back.requests, snap.requests);
        assert_eq!(back.machine, snap.machine);
        assert_eq!(back.perf, snap.perf);
        assert_eq!(back.batch, snap.batch);
        assert_eq!(back.serve, snap.serve);
        assert_eq!(back.ops.len(), snap.ops.len());
        for (a, b) in back.ops.iter().zip(snap.ops.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.calls, b.calls);
            assert_eq!(a.total_ns, b.total_ns);
            assert_eq!(a.max_ns, b.max_ns);
            assert_eq!(a.p50_ns, b.p50_ns);
            assert_eq!(a.p95_ns, b.p95_ns);
            assert_eq!(a.p99_ns, b.p99_ns);
            assert_eq!(a.bit_ops_per_call, b.bit_ops_per_call);
            assert!((a.mean_ns - b.mean_ns).abs() < 1e-9);
            assert!((a.gops - b.gops).abs() < 1e-9);
            assert!((a.gb_per_s - b.gb_per_s).abs() < 1e-9);
            assert!((a.pct_of_peak_compute - b.pct_of_peak_compute).abs() < 1e-9);
            assert!((a.pct_of_peak_bandwidth - b.pct_of_peak_bandwidth).abs() < 1e-9);
            assert_eq!(a.bound, b.bound);
            assert_eq!(a.hist, b.hist);
            assert_eq!(a.tile, b.tile);
        }
    }

    #[test]
    fn v5_serve_snapshot_without_stage_fields_still_parses() {
        let mut v = sample().serve.to_value();
        match &mut v {
            serde::Value::Object(fields) => fields.retain(|(k, _)| !k.starts_with("stage_")),
            other => panic!("expected object, found {}", other.kind()),
        }
        let json = serde_json::to_string(&v).expect("serialize");
        let back: ServeSnapshot = serde_json::from_str(&json).expect("v5 JSON parses");
        assert_eq!(back.stage_queue_wait, StageSnapshot::default());
        assert_eq!(back.net_bytes_in, 40_960);
    }

    #[test]
    fn v6_serve_snapshot_without_govern_field_still_parses() {
        let mut v = sample().serve.to_value();
        match &mut v {
            serde::Value::Object(fields) => fields.retain(|(k, _)| k != "govern"),
            other => panic!("expected object, found {}", other.kind()),
        }
        let json = serde_json::to_string(&v).expect("serialize");
        let back: ServeSnapshot = serde_json::from_str(&json).expect("v6 JSON parses");
        assert_eq!(back.govern, GovernSnapshot::default());
        assert_eq!(back.net_bytes_in, 40_960);
        assert_eq!(back.stage_queue_wait.count, 7);
    }

    #[test]
    fn aggregates() {
        let snap = sample();
        assert_eq!(snap.total_op_ns(), 3_600);
        assert_eq!(snap.hottest_op().map(|o| o.name.as_str()), Some("conv1"));
    }

    #[test]
    fn hottest_op_empty_when_idle() {
        let mut snap = sample();
        for op in &mut snap.ops {
            op.total_ns = 0;
        }
        assert!(snap.hottest_op().is_none());
    }
}
