//! Per-request span tracing with pluggable sinks.
//!
//! A [`RequestTrace`] is the full per-operator timing breakdown of one
//! inference request. Traces are only *built* when the installed
//! [`SpanSink`] reports [`SpanSink::enabled`] — the default [`NoopSink`]
//! reports `false`, so the serving hot path never allocates a trace.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Reads a field that older trace JSON may not carry: a missing key (the
/// vendored serde reads it as `Null`) falls back to the default. The
/// vendored derive has no `#[serde(default)]`, so the types below that
/// need defaulting implement `Deserialize` by hand with this helper.
fn field_or_default<T: Deserialize + Default>(
    v: &serde::Value,
    name: &str,
) -> Result<T, serde::DeError> {
    match v.field(name)? {
        serde::Value::Null => Ok(T::default()),
        other => T::from_value(other),
    }
}

/// One operator's contribution to a request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct OpSpan {
    /// Index of the operator in the compiled plan (stable across requests).
    pub op_index: u64,
    /// Human-readable operator name (layer name or builtin step name).
    pub name: String,
    /// Offset of the operator's start from the trace origin, nanoseconds.
    /// Zero for traces recorded before request-scoped tracing existed (and
    /// for engine-only traces with no surrounding request).
    pub start_ns: u64,
    /// Wall time spent in the operator, nanoseconds.
    pub duration_ns: u64,
}

impl Deserialize for OpSpan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            op_index: Deserialize::from_value(v.field("op_index")?)?,
            name: Deserialize::from_value(v.field("name")?)?,
            start_ns: field_or_default(v, "start_ns")?,
            duration_ns: Deserialize::from_value(v.field("duration_ns")?)?,
        })
    }
}

/// A request-lifecycle stage, in wire order. Stages tile the request
/// wall-clock: each one ends where the next begins (modulo scheduler
/// hand-off gaps), so a trace's stage spans are non-overlapping and sum
/// to approximately [`RequestTrace::total_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Connection accepted → handler thread starts reading (first request
    /// on a connection only).
    Accept,
    /// Reading + parsing the request head.
    Parse,
    /// Reading the request body off the socket.
    ReadBody,
    /// Decoding the body into a tensor.
    Decode,
    /// Admission control inside `Server::submit` (quota, breaker, shed).
    Admit,
    /// Queued, waiting for a worker to pop the request.
    QueueWait,
    /// Popped, waiting for the micro-batch to form (coalesce window).
    BatchWait,
    /// Engine execution (the op spans nest inside this stage).
    Exec,
    /// Writing the response to the socket.
    Write,
}

impl Stage {
    /// Stable snake_case name, as serialized and as shown in trace viewers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::ReadBody => "read_body",
            Stage::Decode => "decode",
            Stage::Admit => "admit",
            Stage::QueueWait => "queue_wait",
            Stage::BatchWait => "batch_wait",
            Stage::Exec => "exec",
            Stage::Write => "write",
        }
    }
}

impl Serialize for Stage {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Stage {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let s = String::from_value(v)?;
        match s.as_str() {
            "accept" => Ok(Stage::Accept),
            "parse" => Ok(Stage::Parse),
            "read_body" => Ok(Stage::ReadBody),
            "decode" => Ok(Stage::Decode),
            "admit" => Ok(Stage::Admit),
            "queue_wait" => Ok(Stage::QueueWait),
            "batch_wait" => Ok(Stage::BatchWait),
            "exec" => Ok(Stage::Exec),
            "write" => Ok(Stage::Write),
            other => Err(serde::DeError::new(format!("unknown stage `{other}`"))),
        }
    }
}

/// One lifecycle stage of a request, as offsets from the trace origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Which stage this span covers.
    pub stage: Stage,
    /// Offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Stage duration, nanoseconds.
    pub duration_ns: u64,
}

/// The complete timing of one inference request.
///
/// The engine fills `request_id`, `total_ns`, and the per-operator
/// `spans`; the serving runtime and network front-end add the
/// request-scoped fields (wire id, tenant, outcome, lifecycle stages,
/// batch metadata) via [`TraceBuilder`]. Deserialization defaults every
/// request-scoped field, so pre-existing JSONL traces still parse.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct RequestTrace {
    /// Monotonic per-model request id.
    pub request_id: u64,
    /// Client-visible wire id (`x-bitflow-request-id`). Empty for
    /// engine-only traces.
    pub id: String,
    /// Tenant (model registry entry) the request was served by. Empty for
    /// engine-only traces.
    pub tenant: String,
    /// Terminal outcome: `"ok"`, `"rejected:<reason>"`, `"error:<code>"`,
    /// or `"write_truncated"`. Empty for engine-only traces (treated as
    /// ok by the flight recorder).
    pub outcome: String,
    /// End-to-end request wall time, nanoseconds (trace origin → finish).
    pub total_ns: u64,
    /// Lifecycle stages in start order (see [`Stage`]).
    pub stages: Vec<StageSpan>,
    /// Size of the micro-batch this request executed in (0 = not batched
    /// through the serving runtime).
    pub batch_size: u64,
    /// The coalesce window that was configured when the batch formed, µs.
    pub coalesce_window_us: u64,
    /// The EWMA batch-latency estimate used for deadline-fit decisions
    /// when the batch formed, nanoseconds.
    pub est_batch_ns: u64,
    /// Per-operator spans in execution order.
    pub spans: Vec<OpSpan>,
}

impl Deserialize for RequestTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            request_id: Deserialize::from_value(v.field("request_id")?)?,
            id: field_or_default(v, "id")?,
            tenant: field_or_default(v, "tenant")?,
            outcome: field_or_default(v, "outcome")?,
            total_ns: Deserialize::from_value(v.field("total_ns")?)?,
            stages: field_or_default(v, "stages")?,
            batch_size: field_or_default(v, "batch_size")?,
            coalesce_window_us: field_or_default(v, "coalesce_window_us")?,
            est_batch_ns: field_or_default(v, "est_batch_ns")?,
            spans: Deserialize::from_value(v.field("spans")?)?,
        })
    }
}

impl RequestTrace {
    /// An engine-only trace: op spans and totals, no request-scoped
    /// context. This is what `try_infer` records when a span sink is
    /// enabled outside the serving stack.
    #[must_use]
    pub fn new(request_id: u64, total_ns: u64, spans: Vec<OpSpan>) -> Self {
        Self {
            request_id,
            id: String::new(),
            tenant: String::new(),
            outcome: String::new(),
            total_ns,
            stages: Vec::new(),
            batch_size: 0,
            coalesce_window_us: 0,
            est_batch_ns: 0,
            spans,
        }
    }

    /// Whether the request resolved successfully. An empty outcome (an
    /// engine-only trace) counts as ok.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.outcome.is_empty() || self.outcome == "ok"
    }
}

/// Accumulates one [`RequestTrace`] across threads.
///
/// A builder is created where the request enters the system (the network
/// front-end at accept, or the serving runtime at submit) and shared —
/// `Arc`-cloned — with whichever connection, worker, and rayon threads
/// touch the request. All timestamps are converted to offsets from the
/// builder's origin `Instant`, so spans recorded on different threads
/// land on one consistent timeline.
#[derive(Debug)]
pub struct TraceBuilder {
    origin: Instant,
    inner: Mutex<TraceInner>,
}

#[derive(Debug, Default)]
struct TraceInner {
    id: String,
    tenant: String,
    outcome: String,
    request_id: u64,
    stages: Vec<StageSpan>,
    spans: Vec<OpSpan>,
    batch_size: u64,
    coalesce_window_us: u64,
    est_batch_ns: u64,
}

impl TraceBuilder {
    /// A builder whose origin is now.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        Self::with_origin(id, Instant::now())
    }

    /// A builder whose origin is an earlier instant (e.g. when the
    /// connection was accepted, before the builder could be allocated).
    #[must_use]
    pub fn with_origin(id: impl Into<String>, origin: Instant) -> Self {
        Self {
            origin,
            inner: Mutex::new(TraceInner {
                id: id.into(),
                ..TraceInner::default()
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Nanoseconds elapsed since the trace origin.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Converts an instant to an offset from the trace origin (saturating
    /// at zero for instants before the origin).
    #[must_use]
    pub fn offset_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// The wire id this builder was created with.
    #[must_use]
    pub fn id(&self) -> String {
        self.lock().id.clone()
    }

    /// Sets the engine/serve-assigned numeric request id.
    pub fn set_request_id(&self, request_id: u64) {
        self.lock().request_id = request_id;
    }

    /// Sets the tenant name.
    pub fn set_tenant(&self, tenant: &str) {
        let mut g = self.lock();
        g.tenant.clear();
        g.tenant.push_str(tenant);
    }

    /// Sets the terminal outcome. Last writer wins; callers set it exactly
    /// once at resolution.
    pub fn set_outcome(&self, outcome: &str) {
        let mut g = self.lock();
        g.outcome.clear();
        g.outcome.push_str(outcome);
    }

    /// Sets the outcome only when no earlier layer recorded one. The
    /// network front-end uses this to label HTTP-layer failures without
    /// clobbering the serving runtime's more precise verdicts
    /// (`rejected:*`, `cancelled`, `error:panic`, ...).
    pub fn set_outcome_if_empty(&self, outcome: &str) {
        let mut g = self.lock();
        if g.outcome.is_empty() {
            g.outcome.push_str(outcome);
        }
    }

    /// Records batch-formation metadata.
    pub fn set_batch(&self, batch_size: u64, coalesce_window_us: u64, est_batch_ns: u64) {
        let mut g = self.lock();
        g.batch_size = batch_size;
        g.coalesce_window_us = coalesce_window_us;
        g.est_batch_ns = est_batch_ns;
    }

    /// Records one lifecycle stage between two instants.
    pub fn stage(&self, stage: Stage, start: Instant, end: Instant) {
        let start_ns = self.offset_ns(start);
        let end_ns = self.offset_ns(end).max(start_ns);
        self.stage_ns(stage, start_ns, end_ns - start_ns);
    }

    /// Records one lifecycle stage from raw origin offsets.
    pub fn stage_ns(&self, stage: Stage, start_ns: u64, duration_ns: u64) {
        self.lock().stages.push(StageSpan {
            stage,
            start_ns,
            duration_ns,
        });
    }

    /// Appends one operator span.
    pub fn push_op(&self, span: OpSpan) {
        self.lock().spans.push(span);
    }

    /// Total recorded duration of `stage` (summed over occurrences), or
    /// `None` when the stage was never recorded.
    #[must_use]
    pub fn stage_total_ns(&self, stage: Stage) -> Option<u64> {
        let g = self.lock();
        let mut total = 0u64;
        let mut seen = false;
        for s in &g.stages {
            if s.stage == stage {
                total = total.saturating_add(s.duration_ns);
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// Seals the trace: total time is origin → now, stages are sorted by
    /// start offset. The builder can be finished only once meaningfully;
    /// later calls would see the already-drained state.
    #[must_use]
    pub fn finish(&self) -> RequestTrace {
        let total_ns = self.now_ns();
        let mut g = self.lock();
        let inner = std::mem::take(&mut *g);
        drop(g);
        let mut stages = inner.stages;
        stages.sort_by_key(|s| s.start_ns);
        RequestTrace {
            request_id: inner.request_id,
            id: inner.id,
            tenant: inner.tenant,
            outcome: inner.outcome,
            total_ns,
            stages,
            batch_size: inner.batch_size,
            coalesce_window_us: inner.coalesce_window_us,
            est_batch_ns: inner.est_batch_ns,
            spans: inner.spans,
        }
    }
}

/// Destination for completed request traces.
///
/// Sinks must be `Send + Sync`: a [`crate::ModelTelemetry`] handle is shared
/// across serving threads. `record` is called once per finished request,
/// off the per-operator hot path.
pub trait SpanSink: Send + Sync {
    /// Whether the engine should build traces at all. When this returns
    /// `false` the engine skips trace construction entirely, keeping the
    /// request path allocation-free.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one completed trace.
    fn record(&self, trace: &RequestTrace);
}

/// The default sink: traces are never built, nothing is recorded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl SpanSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _trace: &RequestTrace) {}
}

/// Keeps the most recent `capacity` traces in memory.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<RequestTrace>>,
}

impl RingSink {
    /// A ring holding at most `capacity` traces (oldest evicted first).
    /// A zero capacity is treated as 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        match self.buf.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all held traces, oldest first.
    pub fn drain(&self) -> Vec<RequestTrace> {
        match self.buf.lock() {
            Ok(mut buf) => buf.drain(..).collect(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        }
    }
}

impl SpanSink for RingSink {
    fn record(&self, trace: &RequestTrace) {
        let mut buf = match self.buf.lock() {
            Ok(buf) => buf,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(trace.clone());
    }
}

/// Writes each trace as one JSON object per line to an arbitrary writer
/// (file, stderr, in-memory buffer). Serialization failures are impossible
/// for `RequestTrace`; I/O failures are swallowed — telemetry must never
/// take down the serving path.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a file at `path` and writes traces to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(io::BufWriter::new(file))))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        out.flush()
    }
}

impl Drop for JsonLinesSink {
    /// Flushes buffered lines so traces survive a mid-stream drop.
    /// `BufWriter`'s own drop also flushes, but silently and only for
    /// writers it owns; flushing here covers every writer and keeps the
    /// guarantee in this type's contract rather than an implementation
    /// detail of the wrapped `Write`.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl SpanSink for JsonLinesSink {
    fn record(&self, trace: &RequestTrace) {
        let Ok(line) = serde_json::to_string(trace) else {
            return;
        };
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace::new(
            id,
            100 * id,
            vec![OpSpan {
                op_index: 0,
                name: "conv1".to_string(),
                start_ns: 5 * id,
                duration_ns: 90 * id,
            }],
        )
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(&trace(1)); // must not panic
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let sink = RingSink::new(3);
        assert!(sink.is_empty());
        for id in 1..=5 {
            sink.record(&trace(id));
        }
        assert_eq!(sink.len(), 3);
        let drained = sink.drain();
        let ids: Vec<u64> = drained.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_zero_capacity_holds_one() {
        let sink = RingSink::new(0);
        sink.record(&trace(1));
        sink.record(&trace(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.drain()[0].request_id, 2);
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                match self.0.lock() {
                    Ok(mut v) => v.extend_from_slice(buf),
                    Err(p) => p.into_inner().extend_from_slice(buf),
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonLinesSink::new(Box::new(shared.clone()));
        sink.record(&trace(1));
        sink.record(&trace(2));
        assert!(sink.flush().is_ok());

        let bytes = match shared.0.lock() {
            Ok(v) => v.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(bytes).expect("utf8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let parsed: RequestTrace = serde_json::from_str(line).expect("valid trace json");
            assert_eq!(parsed.request_id, i as u64 + 1);
            assert_eq!(parsed.spans.len(), 1);
        }
    }

    #[test]
    fn dropping_mid_stream_loses_no_lines() {
        // The sink wraps a BufWriter over a shared buffer; with 64 KiB of
        // default buffering, small traces sit unflushed until drop. Every
        // recorded line must still be present afterwards.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                match self.0.lock() {
                    Ok(mut v) => v.extend_from_slice(buf),
                    Err(p) => p.into_inner().extend_from_slice(buf),
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonLinesSink::new(Box::new(io::BufWriter::new(shared.clone())));
        const N: u64 = 50;
        for id in 1..=N {
            sink.record(&trace(id));
        }
        {
            // Mid-stream: the buffered writer has not been flushed, so the
            // shared buffer must be missing at least the most recent lines.
            let seen = match shared.0.lock() {
                Ok(v) => v.len(),
                Err(p) => p.into_inner().len(),
            };
            let total: usize = (1..=N)
                .map(|id| serde_json::to_string(&trace(id)).expect("json").len() + 1)
                .sum();
            assert!(seen < total, "writer flushed early; test premise broken");
        }
        drop(sink);
        let bytes = match shared.0.lock() {
            Ok(v) => v.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(bytes).expect("utf8");
        let ids: Vec<u64> = text
            .lines()
            .map(|l| {
                serde_json::from_str::<RequestTrace>(l)
                    .expect("complete json line")
                    .request_id
            })
            .collect();
        assert_eq!(ids, (1..=N).collect::<Vec<_>>(), "all lines, in order");
    }

    #[test]
    fn trace_round_trips_through_json() {
        let t = trace(42);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: RequestTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, t);
    }

    #[test]
    fn legacy_trace_json_still_deserializes() {
        // Traces written before request-scoped tracing carry only the
        // engine fields; the serde defaults must fill in the rest.
        let legacy = r#"{"request_id":7,"total_ns":900,
            "spans":[{"op_index":0,"name":"conv1","duration_ns":800}]}"#;
        let t: RequestTrace = serde_json::from_str(legacy).expect("legacy trace");
        assert_eq!(t.request_id, 7);
        assert!(t.id.is_empty() && t.stages.is_empty());
        assert_eq!(t.spans[0].start_ns, 0);
        assert!(t.is_ok(), "empty outcome counts as ok");
    }

    #[test]
    fn trace_builder_accumulates_and_sorts_stages() {
        let origin = std::time::Instant::now();
        let tb = TraceBuilder::with_origin("req-1", origin);
        tb.set_request_id(9);
        tb.set_tenant("vgg");
        tb.set_outcome("ok");
        tb.set_batch(4, 250, 1_000_000);
        // Record stages out of order; finish() must sort by start offset.
        tb.stage_ns(Stage::Exec, 3_000, 500);
        tb.stage_ns(Stage::Parse, 0, 1_000);
        tb.stage_ns(Stage::QueueWait, 1_000, 2_000);
        tb.push_op(OpSpan {
            op_index: 0,
            name: "conv1".to_string(),
            start_ns: 3_100,
            duration_ns: 300,
        });
        assert_eq!(tb.stage_total_ns(Stage::QueueWait), Some(2_000));
        assert_eq!(tb.stage_total_ns(Stage::Write), None);
        let t = tb.finish();
        assert_eq!(t.request_id, 9);
        assert_eq!(
            (t.id.as_str(), t.tenant.as_str(), t.outcome.as_str()),
            ("req-1", "vgg", "ok")
        );
        assert_eq!(
            (t.batch_size, t.coalesce_window_us, t.est_batch_ns),
            (4, 250, 1_000_000)
        );
        let order: Vec<Stage> = t.stages.iter().map(|s| s.stage).collect();
        assert_eq!(order, vec![Stage::Parse, Stage::QueueWait, Stage::Exec]);
        assert_eq!(t.spans.len(), 1);
        assert!(t.is_ok());
    }

    #[test]
    fn trace_builder_offsets_saturate_before_origin() {
        let origin = std::time::Instant::now();
        let tb = TraceBuilder::with_origin("x", origin);
        let before = origin - std::time::Duration::from_millis(5);
        assert_eq!(tb.offset_ns(before), 0);
        tb.stage(Stage::Accept, before, origin);
        let t = tb.finish();
        assert_eq!(t.stages[0].start_ns, 0);
    }
}
