//! Per-request span tracing with pluggable sinks.
//!
//! A [`RequestTrace`] is the full per-operator timing breakdown of one
//! inference request. Traces are only *built* when the installed
//! [`SpanSink`] reports [`SpanSink::enabled`] — the default [`NoopSink`]
//! reports `false`, so the serving hot path never allocates a trace.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One operator's contribution to a request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpan {
    /// Index of the operator in the compiled plan (stable across requests).
    pub op_index: u64,
    /// Human-readable operator name (layer name or builtin step name).
    pub name: String,
    /// Wall time spent in the operator, nanoseconds.
    pub duration_ns: u64,
}

/// The complete per-operator timing of one inference request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Monotonic per-model request id.
    pub request_id: u64,
    /// End-to-end request wall time, nanoseconds.
    pub total_ns: u64,
    /// Per-operator spans in execution order.
    pub spans: Vec<OpSpan>,
}

/// Destination for completed request traces.
///
/// Sinks must be `Send + Sync`: a [`crate::ModelTelemetry`] handle is shared
/// across serving threads. `record` is called once per finished request,
/// off the per-operator hot path.
pub trait SpanSink: Send + Sync {
    /// Whether the engine should build traces at all. When this returns
    /// `false` the engine skips trace construction entirely, keeping the
    /// request path allocation-free.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one completed trace.
    fn record(&self, trace: &RequestTrace);
}

/// The default sink: traces are never built, nothing is recorded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl SpanSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _trace: &RequestTrace) {}
}

/// Keeps the most recent `capacity` traces in memory.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<RequestTrace>>,
}

impl RingSink {
    /// A ring holding at most `capacity` traces (oldest evicted first).
    /// A zero capacity is treated as 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        match self.buf.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the ring holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all held traces, oldest first.
    pub fn drain(&self) -> Vec<RequestTrace> {
        match self.buf.lock() {
            Ok(mut buf) => buf.drain(..).collect(),
            Err(poisoned) => poisoned.into_inner().drain(..).collect(),
        }
    }
}

impl SpanSink for RingSink {
    fn record(&self, trace: &RequestTrace) {
        let mut buf = match self.buf.lock() {
            Ok(buf) => buf,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(trace.clone());
    }
}

/// Writes each trace as one JSON object per line to an arbitrary writer
/// (file, stderr, in-memory buffer). Serialization failures are impossible
/// for `RequestTrace`; I/O failures are swallowed — telemetry must never
/// take down the serving path.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a file at `path` and writes traces to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(io::BufWriter::new(file))))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        out.flush()
    }
}

impl Drop for JsonLinesSink {
    /// Flushes buffered lines so traces survive a mid-stream drop.
    /// `BufWriter`'s own drop also flushes, but silently and only for
    /// writers it owns; flushing here covers every writer and keeps the
    /// guarantee in this type's contract rather than an implementation
    /// detail of the wrapped `Write`.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl SpanSink for JsonLinesSink {
    fn record(&self, trace: &RequestTrace) {
        let Ok(line) = serde_json::to_string(trace) else {
            return;
        };
        let mut out = match self.out.lock() {
            Ok(out) => out,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn trace(id: u64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            total_ns: 100 * id,
            spans: vec![OpSpan {
                op_index: 0,
                name: "conv1".to_string(),
                duration_ns: 90 * id,
            }],
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(&trace(1)); // must not panic
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let sink = RingSink::new(3);
        assert!(sink.is_empty());
        for id in 1..=5 {
            sink.record(&trace(id));
        }
        assert_eq!(sink.len(), 3);
        let drained = sink.drain();
        let ids: Vec<u64> = drained.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_zero_capacity_holds_one() {
        let sink = RingSink::new(0);
        sink.record(&trace(1));
        sink.record(&trace(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.drain()[0].request_id, 2);
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                match self.0.lock() {
                    Ok(mut v) => v.extend_from_slice(buf),
                    Err(p) => p.into_inner().extend_from_slice(buf),
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonLinesSink::new(Box::new(shared.clone()));
        sink.record(&trace(1));
        sink.record(&trace(2));
        assert!(sink.flush().is_ok());

        let bytes = match shared.0.lock() {
            Ok(v) => v.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(bytes).expect("utf8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let parsed: RequestTrace = serde_json::from_str(line).expect("valid trace json");
            assert_eq!(parsed.request_id, i as u64 + 1);
            assert_eq!(parsed.spans.len(), 1);
        }
    }

    #[test]
    fn dropping_mid_stream_loses_no_lines() {
        // The sink wraps a BufWriter over a shared buffer; with 64 KiB of
        // default buffering, small traces sit unflushed until drop. Every
        // recorded line must still be present afterwards.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                match self.0.lock() {
                    Ok(mut v) => v.extend_from_slice(buf),
                    Err(p) => p.into_inner().extend_from_slice(buf),
                }
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonLinesSink::new(Box::new(io::BufWriter::new(shared.clone())));
        const N: u64 = 50;
        for id in 1..=N {
            sink.record(&trace(id));
        }
        {
            // Mid-stream: the buffered writer has not been flushed, so the
            // shared buffer must be missing at least the most recent lines.
            let seen = match shared.0.lock() {
                Ok(v) => v.len(),
                Err(p) => p.into_inner().len(),
            };
            let total: usize = (1..=N)
                .map(|id| serde_json::to_string(&trace(id)).expect("json").len() + 1)
                .sum();
            assert!(seen < total, "writer flushed early; test premise broken");
        }
        drop(sink);
        let bytes = match shared.0.lock() {
            Ok(v) => v.clone(),
            Err(p) => p.into_inner().clone(),
        };
        let text = String::from_utf8(bytes).expect("utf8");
        let ids: Vec<u64> = text
            .lines()
            .map(|l| {
                serde_json::from_str::<RequestTrace>(l)
                    .expect("complete json line")
                    .request_id
            })
            .collect();
        assert_eq!(ids, (1..=N).collect::<Vec<_>>(), "all lines, in order");
    }

    #[test]
    fn trace_round_trips_through_json() {
        let t = trace(42);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: RequestTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, t);
    }
}
