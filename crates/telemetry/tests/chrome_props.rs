//! Property tests for the Chrome trace-event exporter.
//!
//! Over randomized trace sets (tricky ids with quotes/newlines, random
//! stage/op spans including overlapping and overrunning ones), the export
//! must:
//!
//! 1. parse as JSON with the `{"traceEvents": [...]}` shape, every event a
//!    complete (`"X"`) or metadata (`"M"`) event in process `pid == 1`;
//! 2. keep every thread lane internally ordered: within one `tid`, `ts`
//!    is monotonically non-decreasing and `ts + dur` never overlaps the
//!    next event (within a float-rounding epsilon);
//! 3. map trace `i` of the input to exactly the lanes `3i+1..=3i+3` — a
//!    pure function of position, so repeated exports are comparable;
//! 4. be deterministic: the same input renders byte-identical output.

use bitflow_telemetry::{to_chrome_trace, OpSpan, RequestTrace, Stage, StageSpan};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Value};

/// Rounding slack: `ts`/`dur` are µs-valued f64s built from ns integers,
/// so adjacent spans can differ by sub-ns float error.
const EPS: f64 = 1e-3;

fn get<'a>(e: &'a Value, key: &str) -> &'a Value {
    e.field(key).expect("object field")
}

fn get_str(e: &Value, key: &str) -> String {
    String::from_value(get(e, key)).expect("string field")
}

fn get_u64(e: &Value, key: &str) -> u64 {
    u64::from_value(get(e, key)).expect("integer field")
}

fn get_f64(e: &Value, key: &str) -> f64 {
    f64::from_value(get(e, key)).expect("numeric field")
}

fn parse_events(doc: &str) -> Vec<Value> {
    let v: Value = serde_json::from_str(doc).expect("export must be valid JSON");
    match v.field("traceEvents").expect("traceEvents key") {
        Value::Array(items) => items.clone(),
        other => panic!("traceEvents must be an array, found {}", other.kind()),
    }
}

const STAGES: [Stage; 9] = [
    Stage::Accept,
    Stage::Parse,
    Stage::ReadBody,
    Stage::Decode,
    Stage::Admit,
    Stage::QueueWait,
    Stage::BatchWait,
    Stage::Exec,
    Stage::Write,
];

fn random_traces(seed: u64) -> Vec<RequestTrace> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tricky = [
        "plain",
        "qu\"ote",
        "back\\slash",
        "new\nline",
        "",
        "späce µ",
    ];
    let n = rng.gen_range(0..5usize);
    (0..n)
        .map(|i| {
            let total_ns = rng.gen_range(0..10_000_000u64);
            let spans = (0..rng.gen_range(0..6usize))
                .map(|j| OpSpan {
                    op_index: j as u64,
                    name: format!("op-{}-{}", tricky[rng.gen_range(0..tricky.len())], j),
                    // Deliberately allowed to overlap and overrun total_ns.
                    start_ns: rng.gen_range(0..=total_ns.max(1)),
                    duration_ns: rng.gen_range(0..2 * total_ns.max(1)),
                })
                .collect();
            let mut t = RequestTrace::new(i as u64, total_ns, spans);
            t.id = tricky[rng.gen_range(0..tricky.len())].to_string();
            t.tenant = tricky[rng.gen_range(0..tricky.len())].to_string();
            t.outcome = ["", "ok", "error:internal", "rejected:queue_full"]
                [rng.gen_range(0..4usize)]
            .to_string();
            t.batch_size = rng.gen_range(0..32);
            t.stages = (0..rng.gen_range(0..6usize))
                .map(|_| StageSpan {
                    stage: STAGES[rng.gen_range(0..STAGES.len())],
                    start_ns: rng.gen_range(0..=total_ns.max(1)),
                    duration_ns: rng.gen_range(0..2 * total_ns.max(1)),
                })
                .collect();
            t
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn chrome_export_is_valid_ordered_and_stable(seed in any::<u64>()) {
        let traces = random_traces(seed);
        let doc = to_chrome_trace(&traces);

        // 4. Determinism.
        prop_assert_eq!(&doc, &to_chrome_trace(&traces));

        // 1. Shape: every event is X or M inside pid 1.
        let events = parse_events(&doc);
        for e in &events {
            let ph = get_str(e, "ph");
            prop_assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
            prop_assert_eq!(get_u64(e, "pid"), 1);
            if ph == "X" {
                prop_assert!(get_f64(e, "ts") >= 0.0);
                prop_assert!(get_f64(e, "dur") >= 0.0);
            }
        }

        // 2. Per-lane ordering and non-overlap, in document order.
        let mut lanes: std::collections::HashMap<u64, Vec<(f64, f64)>> = Default::default();
        for e in &events {
            if get_str(e, "ph") == "X" {
                lanes
                    .entry(get_u64(e, "tid"))
                    .or_default()
                    .push((get_f64(e, "ts"), get_f64(e, "dur")));
            }
        }
        for (tid, spans) in &lanes {
            let mut prev_end = -1.0f64;
            for &(ts, dur) in spans {
                prop_assert!(
                    ts + EPS >= prev_end,
                    "lane {tid} overlaps: event at {ts} before previous end {prev_end}"
                );
                prev_end = (ts + dur).max(prev_end);
            }
        }

        // 3. Stable pid/tid mapping: trace i owns lanes 3i+1..=3i+3, the
        // request span sits on 3i+1, and nothing else uses those lanes.
        let requests: Vec<&Value> = events
            .iter()
            .filter(|e| get_str(e, "ph") == "X" && get_str(e, "cat") == "request")
            .collect();
        prop_assert_eq!(requests.len(), traces.len());
        for (i, e) in requests.iter().enumerate() {
            prop_assert_eq!(get_u64(e, "tid"), (3 * i + 1) as u64);
            let args = get(e, "args");
            prop_assert_eq!(get_u64(args, "request_id"), traces[i].request_id);
        }
        let max_lane = (3 * traces.len()) as u64;
        for e in &events {
            let tid = get_u64(e, "tid");
            prop_assert!(
                tid <= max_lane,
                "tid {tid} outside the {} owned lanes",
                max_lane
            );
            if get_str(e, "ph") == "X" {
                let cat = get_str(e, "cat");
                let expect_rem = match cat.as_str() {
                    "request" => 1,
                    "stage" => 2,
                    "op" => 0,
                    other => return Err(TestCaseError::fail(format!("unknown cat {other}"))),
                };
                prop_assert_eq!(tid as usize % 3, expect_rem, "cat {} on tid {}", cat, tid);
            }
        }
    }
}
