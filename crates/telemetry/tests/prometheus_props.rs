//! Property tests for the Prometheus text exposition.
//!
//! Two invariants, over randomized snapshots (including label values with
//! quotes, backslashes, and newlines):
//!
//! 1. **Format validity** — every line of `to_prometheus()` is a comment
//!    header or a parseable series (`name{labels} value`), every `# TYPE`
//!    precedes its family's series, histogram buckets are cumulative with
//!    strictly increasing `le` edges terminated by `+Inf`, and
//!    `+Inf == _count == calls`.
//! 2. **Counter round-trip** — the integer counters in the text equal the
//!    same counters read back from the serde-JSON form of the snapshot, so
//!    the two exporters can never drift apart silently.

use bitflow_telemetry::{
    BatchSnapshot, GovernSnapshot, HistBucket, MachineSnapshot, MetricsSnapshot, OpBound, OpKind,
    OpSnapshot, PerfSnapshot, ServeSnapshot, SizeBucket, StageSnapshot, BATCH_SIZE_EDGES,
    SCHEMA_VERSION,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One parsed series line.
#[derive(Debug)]
struct Series {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses one series line, validating the grammar strictly. Returns an
/// error message describing the first violation.
fn parse_series(line: &str) -> Result<Series, String> {
    let brace = line.find('{');
    let (name, rest) = match brace {
        Some(i) => (&line[..i], &line[i..]),
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("no value separator: {line}"))?;
            let value = value
                .parse::<f64>()
                .map_err(|_| format!("bad value: {line}"))?;
            return Ok(Series {
                name: name.to_string(),
                labels: vec![],
                value,
            });
        }
    };
    if !metric_name_ok(name) {
        return Err(format!("bad metric name `{name}`"));
    }
    // Parse `{k="v",k="v"} value` with escape handling.
    let mut chars = rest.chars();
    if chars.next() != Some('{') {
        return Err(format!("expected `{{`: {line}"));
    }
    let mut labels = Vec::new();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !metric_name_ok(&key) {
            return Err(format!("bad label name `{key}` in {line}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label value not quoted: {line}"));
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {line}")),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err(format!("unterminated label value: {line}")),
            }
        }
        labels.push((key, val));
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("bad label separator {other:?}: {line}")),
        }
    }
    let value_text: String = chars.collect();
    let value_text = value_text.trim();
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad value: {line}"))?,
    };
    Ok(Series {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses the whole exposition, checking header/series structure, and
/// returns the series list. Panics (via Err) on any format violation.
fn parse_exposition(text: &str) -> Result<Vec<Series>, String> {
    let mut series = Vec::new();
    let mut typed: std::collections::HashMap<String, String> = Default::default();
    let mut seen_families: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            if !metric_name_ok(name) {
                return Err(format!("bad family name in header: {line}"));
            }
            if keyword == "TYPE" {
                let kind = parts.next().unwrap_or("");
                if !["counter", "gauge", "histogram"].contains(&kind) {
                    return Err(format!("bad TYPE kind: {line}"));
                }
                typed.insert(name.to_string(), kind.to_string());
            } else if keyword != "HELP" {
                return Err(format!("unknown comment keyword: {line}"));
            }
            continue;
        }
        let s = parse_series(line)?;
        // Strip histogram suffixes to find the owning family.
        let family = s
            .name
            .strip_suffix("_sum")
            .or_else(|| s.name.strip_suffix("_count"))
            .filter(|f| typed.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(&s.name)
            .to_string();
        if !typed.contains_key(&family) {
            return Err(format!("series before its TYPE header: {line}"));
        }
        // Families must be contiguous: once we move on, never come back.
        match seen_families.last() {
            Some(last) if *last == family => {}
            _ => {
                if seen_families.contains(&family) {
                    return Err(format!("family `{family}` is not contiguous"));
                }
                seen_families.push(family);
            }
        }
        series.push(s);
    }
    Ok(series)
}

/// A random stage-latency snapshot: a sparse histogram with increasing
/// edges whose bucket counts sum to exactly `count`.
fn random_stage(rng: &mut StdRng) -> StageSnapshot {
    let count = rng.gen_range(0..10_000u64);
    let mut remaining = count;
    let mut le = 0u64;
    let mut buckets = Vec::new();
    for _ in 0..rng.gen_range(0..5usize) {
        le += rng.gen_range(1..100_000u64);
        let c = rng.gen_range(0..=remaining);
        remaining -= c;
        if c > 0 {
            buckets.push(HistBucket {
                le_ns: le,
                count: c,
            });
        }
    }
    if remaining > 0 {
        le += rng.gen_range(1..100_000u64);
        buckets.push(HistBucket {
            le_ns: le,
            count: remaining,
        });
    }
    StageSnapshot {
        count,
        total_ns: count * rng.gen_range(1..100_000u64),
        buckets,
    }
}

/// Builds a randomized snapshot from a seed: tricky label values, sparse
/// histograms, optional perf counters.
fn random_snapshot(seed: u64) -> MetricsSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let tricky = ["plain", "qu\"ote", "back\\slash", "new\nline", "sp ace"];
    let model = tricky[rng.gen_range(0..tricky.len())].to_string();
    let n_ops = rng.gen_range(0..4usize);
    let ops = (0..n_ops)
        .map(|i| {
            let calls = rng.gen_range(0..1000u64);
            // Sparse histogram: increasing edges, bucket counts that sum
            // to at most `calls` (the +Inf row absorbs the rest).
            let mut hist = Vec::new();
            let mut le = 0u64;
            let mut remaining = calls;
            for _ in 0..rng.gen_range(0..4usize) {
                le += rng.gen_range(1..1_000u64);
                let c = rng.gen_range(0..=remaining);
                remaining -= c;
                if c > 0 {
                    hist.push(HistBucket {
                        le_ns: le,
                        count: c,
                    });
                }
            }
            let total_ns = calls * rng.gen_range(1..10_000u64);
            OpSnapshot {
                name: format!("{}_{i}", tricky[rng.gen_range(0..tricky.len())]),
                kind: [OpKind::Conv, OpKind::Fc, OpKind::Pool][rng.gen_range(0..3usize)],
                calls,
                total_ns,
                mean_ns: rng.gen_range(0.0..1e6),
                max_ns: rng.gen_range(0..1_000_000),
                p50_ns: rng.gen_range(0..1_000_000),
                p95_ns: rng.gen_range(0..1_000_000),
                p99_ns: rng.gen_range(0..1_000_000),
                bit_ops_per_call: rng.gen_range(0..u32::MAX as u64),
                bytes_read_per_call: rng.gen_range(0..1_000_000),
                bytes_written_per_call: rng.gen_range(0..1_000_000),
                gops: rng.gen_range(0.0..5_000.0),
                gb_per_s: rng.gen_range(0.0..100.0),
                pct_of_peak_compute: rng.gen_range(0.0..100.0),
                pct_of_peak_bandwidth: rng.gen_range(0.0..100.0),
                bound: [OpBound::Compute, OpBound::Memory, OpBound::Idle][rng.gen_range(0..3usize)],
                hist,
                tile: None,
            }
        })
        .collect();
    let perf = if rng.gen_bool(0.5) {
        PerfSnapshot {
            status: "ok".to_string(),
            sampled_requests: rng.gen_range(0..1000),
            cycles: Some(rng.gen_range(0..u32::MAX as u64)),
            instructions: Some(rng.gen_range(0..u32::MAX as u64)),
            llc_misses: rng.gen_bool(0.5).then(|| rng.gen_range(0..1_000_000)),
            branch_misses: None,
            ipc: Some(rng.gen_range(0.0..8.0)),
        }
    } else {
        PerfSnapshot::unavailable("perf_event_open(config=0) failed: ENOENT (errno 2)")
    };
    MetricsSnapshot {
        schema_version: SCHEMA_VERSION,
        model,
        requests: rng.gen_range(0..100_000),
        machine: MachineSnapshot {
            features: "sse2+ssse3+popcnt+avx2".to_string(),
            simd_width_bits: 256,
            logical_cores: rng.gen_range(1..128),
            freq_ghz: rng.gen_range(0.5..6.0),
            freq_source: "calibrated".to_string(),
            peak_gops: rng.gen_range(1.0..100_000.0),
            peak_gb_per_s: rng.gen_range(1.0..500.0),
            bw_source: "measured".to_string(),
        },
        perf,
        ops,
        batch: BatchSnapshot {
            batches: rng.gen_range(0..1000),
            items: rng.gen_range(0..10_000),
            failed_items: rng.gen_range(0..100),
            chunks: rng.gen_range(0..1000),
            max_batch: rng.gen_range(0..64),
            queued_items: rng.gen_range(0..64),
        },
        serve: {
            // Sparse batch-size histogram consistent with `batches`: the
            // +Inf row the renderer emits absorbs the remainder.
            let batches = rng.gen_range(0..10_000u64);
            let mut remaining = batches;
            let mut batch_size_hist = Vec::new();
            for &le in &BATCH_SIZE_EDGES {
                let c = rng.gen_range(0..=remaining);
                remaining -= c;
                if c > 0 {
                    batch_size_hist.push(SizeBucket { le, count: c });
                }
            }
            ServeSnapshot {
                submitted: rng.gen_range(0..100_000),
                accepted: rng.gen_range(0..100_000),
                completed: rng.gen_range(0..100_000),
                failed: rng.gen_range(0..1_000),
                rejected_queue_full: rng.gen_range(0..10_000),
                rejected_shedding: rng.gen_range(0..10_000),
                rejected_draining: rng.gen_range(0..10_000),
                rejected_quota: rng.gen_range(0..10_000),
                shed_deadline: rng.gen_range(0..10_000),
                deadline_missed: rng.gen_range(0..10_000),
                cancelled: rng.gen_range(0..10_000),
                worker_panics: rng.gen_range(0..100),
                worker_restarts: rng.gen_range(0..100),
                breaker_trips: rng.gen_range(0..100),
                queue_depth: rng.gen_range(0..256),
                queue_depth_max: rng.gen_range(0..256),
                batches,
                batch_items: rng.gen_range(0..100_000),
                batch_size_max: rng.gen_range(0..64),
                batch_size_hist,
                net_accepted_conns: rng.gen_range(0..100_000),
                net_rejected_conns: rng.gen_range(0..10_000),
                net_timeouts_read: rng.gen_range(0..10_000),
                net_timeouts_write: rng.gen_range(0..10_000),
                net_malformed_requests: rng.gen_range(0..10_000),
                net_bytes_in: rng.gen_range(0..u32::MAX as u64),
                net_bytes_out: rng.gen_range(0..u32::MAX as u64),
                govern: GovernSnapshot {
                    rejected_memory: rng.gen_range(0..10_000),
                    net_accept_errors: rng.gen_range(0..10_000),
                    net_spawn_sheds: rng.gen_range(0..10_000),
                    mem_used_bytes: rng.gen_range(0..u32::MAX as u64),
                    mem_budget_bytes: rng.gen_range(0..u32::MAX as u64),
                    mem_leases: rng.gen_range(0..10_000),
                    degradation_state: rng.gen_range(0..3),
                },
                stage_queue_wait: random_stage(&mut rng),
                stage_batch_wait: random_stage(&mut rng),
                stage_exec: random_stage(&mut rng),
                stage_write: random_stage(&mut rng),
            }
        },
    }
}

/// The value of the unique `bitflow_serve_rejected_total` series with the
/// given `reason` label.
fn rejected_value(series: &[Series], reason: &str) -> Option<f64> {
    let mut it = series.iter().filter(|s| {
        s.name == "bitflow_serve_rejected_total"
            && s.labels.iter().any(|(k, v)| k == "reason" && v == reason)
    });
    let found = it.next()?;
    assert!(
        it.next().is_none(),
        "duplicate rejected series for {reason}"
    );
    Some(found.value)
}

/// The value of the unique series `name` restricted to label `op="..."`.
fn series_value(series: &[Series], name: &str, op: Option<&str>) -> Option<f64> {
    let mut it = series.iter().filter(|s| {
        s.name == name
            && match op {
                Some(op) => s.labels.iter().any(|(k, v)| k == "op" && v == op),
                None => true,
            }
    });
    let found = it.next()?;
    assert!(it.next().is_none(), "duplicate series for {name}");
    Some(found.value)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn exposition_is_valid_and_round_trips_counters(seed in any::<u64>()) {
        let snap = random_snapshot(seed);
        let text = snap.to_prometheus();
        let series = parse_exposition(&text).map_err(TestCaseError::fail)?;

        // Counter round-trip goes through the *JSON* exporter, so the two
        // serialization paths are checked against each other.
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");

        prop_assert_eq!(
            series_value(&series, "bitflow_requests_total", None),
            Some(back.requests as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_batch_items_total", None),
            Some(back.batch.items as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_perf_sampled_requests_total", None),
            Some(back.perf.sampled_requests as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_perf_cycles_total", None),
            back.perf.cycles.map(|c| c as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_machine_logical_cores", None),
            Some(back.machine.logical_cores as f64)
        );

        // Serving counters round-trip through both exporters too.
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_submitted_total", None),
            Some(back.serve.submitted as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_accepted_total", None),
            Some(back.serve.accepted as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_completed_total", None),
            Some(back.serve.completed as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_deadline_shed_total", None),
            Some(back.serve.shed_deadline as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_worker_restarts_total", None),
            Some(back.serve.worker_restarts as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_queue_depth", None),
            Some(back.serve.queue_depth as f64)
        );
        prop_assert_eq!(
            rejected_value(&series, "queue_full"),
            Some(back.serve.rejected_queue_full as f64)
        );
        prop_assert_eq!(
            rejected_value(&series, "shedding"),
            Some(back.serve.rejected_shedding as f64)
        );
        prop_assert_eq!(
            rejected_value(&series, "draining"),
            Some(back.serve.rejected_draining as f64)
        );
        prop_assert_eq!(
            rejected_value(&series, "quota"),
            Some(back.serve.rejected_quota as f64)
        );
        prop_assert_eq!(
            rejected_value(&series, "memory"),
            Some(back.serve.govern.rejected_memory as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_batch_size_count", None),
            Some(back.serve.batches as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_serve_batch_size_sum", None),
            Some(back.serve.batch_items as f64)
        );

        // Network front-end counters round-trip through both exporters.
        prop_assert_eq!(
            series_value(&series, "bitflow_net_accepted_conns_total", None),
            Some(back.serve.net_accepted_conns as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_rejected_conns_total", None),
            Some(back.serve.net_rejected_conns as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_timeouts_read_total", None),
            Some(back.serve.net_timeouts_read as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_timeouts_write_total", None),
            Some(back.serve.net_timeouts_write as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_malformed_requests_total", None),
            Some(back.serve.net_malformed_requests as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_bytes_in_total", None),
            Some(back.serve.net_bytes_in as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_bytes_out_total", None),
            Some(back.serve.net_bytes_out as f64)
        );

        // Resource-governance counters and gauges round-trip too.
        prop_assert_eq!(
            series_value(&series, "bitflow_net_accept_errors_total", None),
            Some(back.serve.govern.net_accept_errors as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_net_spawn_sheds_total", None),
            Some(back.serve.govern.net_spawn_sheds as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_mem_used_bytes", None),
            Some(back.serve.govern.mem_used_bytes as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_mem_budget_bytes", None),
            Some(back.serve.govern.mem_budget_bytes as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_mem_leases", None),
            Some(back.serve.govern.mem_leases as f64)
        );
        prop_assert_eq!(
            series_value(&series, "bitflow_degradation_state", None),
            Some(back.serve.govern.degradation_state as f64)
        );

        // Stage histograms: cumulative buckets terminated by +Inf, with
        // _sum/_count round-tripping through both exporters.
        let stages: [(&str, &StageSnapshot); 4] = [
            ("bitflow_stage_queue_wait_ns", &back.serve.stage_queue_wait),
            ("bitflow_stage_batch_wait_ns", &back.serve.stage_batch_wait),
            ("bitflow_stage_exec_ns", &back.serve.stage_exec),
            ("bitflow_stage_write_ns", &back.serve.stage_write),
        ];
        for (name, stage) in stages {
            let buckets: Vec<&Series> = series.iter().filter(|s| s.name == name).collect();
            let mut prev_le = -1.0f64;
            let mut prev_cum = -1.0f64;
            for b in &buckets {
                let le = &b
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .expect("bucket has le")
                    .1;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().expect("numeric le")
                };
                prop_assert!(le > prev_le, "le not increasing for {}", name);
                prop_assert!(b.value >= prev_cum, "buckets not cumulative for {}", name);
                prev_le = le;
                prev_cum = b.value;
            }
            let last = buckets.last().expect("+Inf bucket always present");
            prop_assert!(prev_le.is_infinite(), "{} not terminated by +Inf", name);
            prop_assert_eq!(last.value, stage.count as f64, "{} +Inf != count", name);
            prop_assert_eq!(
                series_value(&series, &format!("{name}_count"), None),
                Some(stage.count as f64)
            );
            prop_assert_eq!(
                series_value(&series, &format!("{name}_sum"), None),
                Some(stage.total_ns as f64)
            );
        }

        for op in &back.ops {
            prop_assert_eq!(
                series_value(&series, "bitflow_op_calls_total", Some(&op.name)),
                Some(op.calls as f64),
                "op {}", op.name
            );
            prop_assert_eq!(
                series_value(&series, "bitflow_op_time_ns_total", Some(&op.name)),
                Some(op.total_ns as f64)
            );

            // Histogram invariants: cumulative counts monotone over
            // strictly increasing le edges, +Inf == _count == calls.
            let buckets: Vec<&Series> = series
                .iter()
                .filter(|s| {
                    s.name == "bitflow_op_latency_ns"
                        && s.labels.iter().any(|(k, v)| k == "op" && v == &op.name)
                })
                .collect();
            let mut prev_le = -1.0f64;
            let mut prev_cum = -1.0f64;
            for b in &buckets {
                let le = &b
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .expect("bucket has le")
                    .1;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().expect("numeric le")
                };
                prop_assert!(le > prev_le, "le not increasing for {}", op.name);
                prop_assert!(b.value >= prev_cum, "buckets not cumulative for {}", op.name);
                prev_le = le;
                prev_cum = b.value;
            }
            let last = buckets.last().expect("+Inf bucket always present");
            prop_assert_eq!(last.value, op.calls as f64);
            prop_assert_eq!(
                series_value(&series, "bitflow_op_latency_ns_count", Some(&op.name)),
                Some(op.calls as f64)
            );
            prop_assert_eq!(
                series_value(&series, "bitflow_op_latency_ns_sum", Some(&op.name)),
                Some(op.total_ns as f64)
            );
        }
    }
}
