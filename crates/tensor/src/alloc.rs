//! 64-byte-aligned heap buffers.
//!
//! AVX-512 loads are fastest when they never straddle a cache line, and the
//! paper's pressed tensors are consumed in whole-register gulps; aligning
//! every buffer to 64 bytes makes `_mm512_load_si512`-class accesses legal
//! on any word offset that is itself a multiple of 8 words.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout as AllocLayout};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Cache-line alignment used for all tensor storage.
pub const ALIGN: usize = 64;

/// A fixed-capacity, 64-byte-aligned, zero-initialized buffer of `T`.
///
/// Unlike `Vec<T>`, the buffer is allocated once at its final length and is
/// always fully initialized (zeroed); this matches BitFlow's network-level
/// policy of pre-allocating every activation buffer during initialization so
/// the inference path performs no allocation at all. Zero-initialization is
/// also what makes the paper's *zero-cost padding* trick work: the padded
/// margin of an output buffer is simply never written.
pub struct AlignedVec<T: Copy> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: `AlignedVec` owns its allocation exclusively, exactly like `Vec`.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocates a zeroed buffer of `len` elements aligned to [`ALIGN`].
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is not a ZST by the
        // size assert in `layout`).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    /// Builds an aligned buffer by copying from a slice.
    pub fn from_slice(src: &[T]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    /// Builds an aligned buffer from a length and a fill function.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let mut v = Self::zeroed(len);
        for (i, slot) in v.as_mut_slice().iter_mut().enumerate() {
            *slot = f(i);
        }
        v
    }

    fn layout(len: usize) -> AllocLayout {
        assert!(std::mem::size_of::<T>() > 0, "ZSTs are not supported");
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("AlignedVec size overflow");
        AllocLayout::from_size_align(bytes, ALIGN.max(std::mem::align_of::<T>()))
            .expect("invalid layout")
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Raw mutable pointer to the first element (64-byte aligned).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }
}

impl<T: Copy + Default + PartialEq> AlignedVec<T> {
    /// Resets every element to zero (`T::default()`).
    pub fn clear_to_zero(&mut self) {
        for x in self.as_mut_slice() {
            *x = T::default();
        }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the same layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) }
        }
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedVec(len={}, align={})", self.len, ALIGN)
    }
}

impl<T: Copy> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let items: Vec<T> = iter.into_iter().collect();
        Self::from_slice(&items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v: AlignedVec<f32> = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn u64_buffer_aligned() {
        for len in [1usize, 7, 8, 63, 64, 65, 4096] {
            let v: AlignedVec<u64> = AlignedVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert!(v.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn empty_buffer_ok() {
        let v: AlignedVec<u64> = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[u64]);
        let c = v.clone();
        assert!(c.is_empty());
    }

    #[test]
    fn from_slice_round_trip() {
        let src = [1.0f32, -2.0, 3.5, 0.0];
        let v = AlignedVec::from_slice(&src);
        assert_eq!(v.as_slice(), &src);
    }

    #[test]
    fn from_fn_fills() {
        let v = AlignedVec::from_fn(10, |i| i as u64 * 3);
        assert_eq!(v[9], 27);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1u64, 2, 3]);
        let b = a.clone();
        a.as_mut_slice()[0] = 99;
        assert_eq!(b[0], 1);
        assert_eq!(a[0], 99);
    }

    #[test]
    fn clear_to_zero_resets() {
        let mut v = AlignedVec::from_slice(&[5.0f32, 6.0]);
        v.clear_to_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mutation_through_deref() {
        let mut v: AlignedVec<u64> = AlignedVec::zeroed(4);
        v[2] = 0xDEAD;
        assert_eq!(v.as_slice(), &[0, 0, 0xDEAD, 0]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: AlignedVec<u64> = (0..5u64).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
    }
}
