//! Binarization primitives — the Rust counterpart of the paper's
//! `bit64_t` / `bit64_u` data structures (paper Table II).
//!
//! The C implementation uses a 64-member bit-field struct unioned with a
//! `uint64_t` so that 64 comparisons `p[i] >= 0.0f` assemble a packed word
//! with no explicit shifting. In Rust the idiomatic equivalent is a
//! newtype over `u64` with `set_bit`; the optimizer lowers the
//! comparison+or chain to the same branch-free code. [`Bit64::pack64`]
//! is the fused binarize+pack step used throughout the engine.

use serde::{Deserialize, Serialize};

/// Binarizes one `f32` with the paper's activation function (Eq. 3):
/// `sign(x) = +1 if x >= 0 else −1`, encoded as a single bit
/// (+1 → 1, −1 → 0).
#[inline(always)]
pub fn binarize_f32(x: f32) -> u64 {
    // `>= 0.0` is true for +0.0 and -0.0 per IEEE-754 compare, matching the
    // paper's `p[i] >= 0.0f` (sign(0) = +1).
    (x >= 0.0) as u64
}

/// A 64-bit packed word of binarized values; bit `i` holds the encoding of
/// logical element `i` (LSB-first).
///
/// Equivalent to the paper's `bit64_u` union: build the word bit by bit from
/// float comparisons, read it out as one `u64`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Bit64(pub u64);

impl Bit64 {
    /// The all-(−1) word (all bits clear).
    pub const ZERO: Bit64 = Bit64(0);

    /// Sets bit `i` (0..64) to `v`.
    #[inline(always)]
    pub fn set_bit(&mut self, i: usize, v: bool) {
        debug_assert!(i < 64);
        self.0 = (self.0 & !(1u64 << i)) | ((v as u64) << i);
    }

    /// Reads bit `i`.
    #[inline(always)]
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < 64);
        (self.0 >> i) & 1 == 1
    }

    /// Decodes bit `i` back to the logical value +1 / −1.
    #[inline(always)]
    pub fn value(&self, i: usize) -> i32 {
        if self.bit(i) {
            1
        } else {
            -1
        }
    }

    /// Fused binarization + bit-packing of exactly 64 contiguous floats
    /// (paper Table II/III): bit `i` = `xs[i] >= 0`.
    #[inline]
    pub fn pack64(xs: &[f32; 64]) -> Bit64 {
        let mut w = 0u64;
        // The loop compiles to 64 branch-free cmp+or operations; on AVX-512
        // targets LLVM further vectorizes it into compare-into-mask ops.
        for (i, &x) in xs.iter().enumerate() {
            w |= binarize_f32(x) << i;
        }
        Bit64(w)
    }

    /// Fused binarization + packing of up to 64 floats with a stride between
    /// consecutive logical elements. A stride of `k` walking down a column
    /// performs the paper's *implicit transposition* (Table III): values that
    /// are `k` apart in memory land in adjacent bits of the packed word.
    ///
    /// `len` may be < 64; the remaining high bits are left 0, i.e. padded
    /// elements encode −1 — callers that pad must pad *both* operands so
    /// that pad bits xor to 0 (see crate docs on padding correctness).
    #[inline]
    pub fn pack_strided(xs: &[f32], stride: usize, len: usize) -> Bit64 {
        debug_assert!(len <= 64);
        debug_assert!(len == 0 || (len - 1) * stride < xs.len());
        let mut w = 0u64;
        for i in 0..len {
            w |= binarize_f32(xs[i * stride]) << i;
        }
        Bit64(w)
    }

    /// Unpacks into logical {−1,+1} values (first `len` bits).
    pub fn unpack(&self, len: usize) -> Vec<i32> {
        (0..len).map(|i| self.value(i)).collect()
    }
}

/// Binarizes a float slice into packed `u64` words, LSB-first within each
/// word; the final partial word (if any) is zero-padded high.
pub fn pack_slice(xs: &[f32], out: &mut [u64]) {
    assert_eq!(out.len(), xs.len().div_ceil(64), "output word count");
    let mut chunks = xs.chunks_exact(64);
    let mut wi = 0;
    for chunk in chunks.by_ref() {
        let arr: &[f32; 64] = chunk.try_into().expect("chunk of 64");
        out[wi] = Bit64::pack64(arr).0;
        wi += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        out[wi] = Bit64::pack_strided(rem, 1, rem.len()).0;
    }
}

/// Decodes packed words back to {−1.0, +1.0} floats (for testing and for
/// layers that mix binary and float domains).
pub fn unpack_slice(words: &[u64], len: usize, out: &mut [f32]) {
    assert!(len <= words.len() * 64);
    assert_eq!(out.len(), len);
    for (i, o) in out.iter_mut().enumerate() {
        let bit = (words[i / 64] >> (i % 64)) & 1;
        *o = if bit == 1 { 1.0 } else { -1.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarize_sign_convention() {
        assert_eq!(binarize_f32(3.2), 1);
        assert_eq!(binarize_f32(0.0), 1, "sign(0) = +1 per paper Eq. 3");
        assert_eq!(binarize_f32(-0.0), 1, "-0.0 >= 0.0 in IEEE-754");
        assert_eq!(binarize_f32(-1e-30), 0);
        assert_eq!(binarize_f32(f32::INFINITY), 1);
        assert_eq!(binarize_f32(f32::NEG_INFINITY), 0);
    }

    #[test]
    fn set_and_get_bits() {
        let mut b = Bit64::ZERO;
        b.set_bit(0, true);
        b.set_bit(63, true);
        assert!(b.bit(0) && b.bit(63) && !b.bit(32));
        assert_eq!(b.0, 1 | (1 << 63));
        b.set_bit(63, false);
        assert_eq!(b.0, 1);
        assert_eq!(b.value(0), 1);
        assert_eq!(b.value(1), -1);
    }

    #[test]
    fn pack64_lsb_first() {
        let mut xs = [-1.0f32; 64];
        xs[0] = 1.0;
        xs[5] = 0.0; // sign(0) = +1
        let w = Bit64::pack64(&xs);
        assert_eq!(w.0, (1 << 0) | (1 << 5));
    }

    #[test]
    fn pack_strided_transposes() {
        // 4 columns of stride 4: packing column 1 takes elements 1, 5, 9.
        let xs = [
            -1.0f32, 1.0, -1.0, -1.0, //
            -1.0, -1.0, -1.0, -1.0, //
            -1.0, 1.0, -1.0, -1.0,
        ];
        let w = Bit64::pack_strided(&xs[1..], 4, 3);
        assert_eq!(w.0, (1 << 0) | (1 << 2));
    }

    #[test]
    fn pack_unpack_slice_round_trip() {
        let xs: Vec<f32> = (0..150)
            .map(|i| if (i * 7) % 3 == 0 { 0.5 } else { -0.5 })
            .collect();
        let mut words = vec![0u64; 150usize.div_ceil(64)];
        pack_slice(&xs, &mut words);
        let mut decoded = vec![0.0f32; 150];
        unpack_slice(&words, 150, &mut decoded);
        for (x, d) in xs.iter().zip(&decoded) {
            assert_eq!(*d, if *x >= 0.0 { 1.0 } else { -1.0 });
        }
        // Padding bits of the last word are zero.
        assert_eq!(words[2] >> (150 - 128), 0);
    }

    #[test]
    fn unpack_via_bit64() {
        let w = Bit64(0b1011);
        assert_eq!(w.unpack(4), vec![1, 1, -1, 1]);
    }
}
