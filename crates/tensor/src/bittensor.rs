//! Pressed (bit-packed) tensors — the data structure behind PressedConv.
//!
//! A [`BitTensor`] stores a binarized NHWC activation map with the channel
//! dimension packed into `u64` words (paper Fig. 3: a H×W×C tensor is
//! *pressed* by 32–64× along C). A [`BitFilterBank`] stores a bank of
//! binarized convolution filters packed the same way, so that the inner
//! loop of a binary convolution is a straight run of xor+popcount over two
//! parallel word arrays.

use crate::alloc::AlignedVec;
use crate::bits::pack_slice;
use crate::shape::{FilterShape, Layout, Shape};
use crate::tensor::Tensor;
use crate::{words_for, WORD_BITS};

/// A binarized activation tensor, batch 1, NHWC with channels packed into
/// `u64` words.
///
/// Storage: word `j` of pixel (h, w) lives at `(h·W + w)·c_words + j` and
/// holds channels `[64j, 64j+64)` LSB-first. Channels beyond `c_logical`
/// (the zero-padded press tail) are always 0; the packing and arithmetic
/// layers preserve this invariant so that `dot = N_logical − 2·popcount`
/// holds exactly (see crate docs).
#[derive(Clone, Debug)]
pub struct BitTensor {
    words: AlignedVec<u64>,
    h: usize,
    w: usize,
    c_logical: usize,
    c_words: usize,
}

impl BitTensor {
    /// Allocates an all-zero (all −1) pressed tensor.
    pub fn zeros(h: usize, w: usize, c: usize) -> Self {
        let c_words = words_for(c);
        Self {
            words: AlignedVec::zeroed(h * w * c_words),
            h,
            w,
            c_logical: c,
            c_words,
        }
    }

    /// Packs a float NHWC tensor (batch 1) into pressed form: fused
    /// binarization + bit-packing along the channel dimension.
    pub fn from_tensor(t: &Tensor) -> Self {
        assert_eq!(t.layout(), Layout::Nhwc, "pressing requires NHWC");
        let s = t.shape();
        assert_eq!(s.n, 1, "BitTensor is batch-1 (latency-oriented inference)");
        let mut bt = Self::zeros(s.h, s.w, s.c);
        for h in 0..s.h {
            for w in 0..s.w {
                let src = t.pixel_channels(0, h, w);
                let row = bt.pixel_words_index(h, w);
                pack_slice(src, &mut bt.words[row..row + bt.c_words]);
            }
        }
        bt
    }

    /// Packs a flat **NCHW** float buffer into pressed NHWC form. The
    /// channel values of one pixel are `h·w` floats apart in NCHW, so every
    /// packed bit is a strided gather — this is the layout ablation's
    /// counter-example to the locality-aware NHWC layout (paper §III-B:
    /// packing "would have not been possible [efficiently] if either height
    /// or width dimension has been chosen" as the innermost).
    pub fn from_nchw(data: &[f32], h: usize, w: usize, c: usize) -> Self {
        assert_eq!(data.len(), h * w * c, "NCHW buffer size");
        let mut bt = Self::zeros(h, w, c);
        let plane = h * w;
        for y in 0..h {
            for x in 0..w {
                let base = bt.pixel_words_index(y, x);
                let px = y * w + x;
                for cc in 0..c {
                    if data[cc * plane + px] >= 0.0 {
                        bt.words[base + cc / WORD_BITS] |= 1 << (cc % WORD_BITS);
                    }
                }
            }
        }
        bt
    }

    /// Packs a float tensor into the **interior** of a spatially padded
    /// pressed tensor of shape (h+2p)×(w+2p). The margin stays all-zero —
    /// this is the paper's zero-cost padding (Fig. 5) on the input side.
    pub fn from_tensor_padded(t: &Tensor, pad: usize) -> Self {
        assert_eq!(t.layout(), Layout::Nhwc);
        let s = t.shape();
        assert_eq!(s.n, 1);
        let mut bt = Self::zeros(s.h + 2 * pad, s.w + 2 * pad, s.c);
        for h in 0..s.h {
            for w in 0..s.w {
                let src = t.pixel_channels(0, h, w);
                let row = bt.pixel_words_index(h + pad, w + pad);
                pack_slice(src, &mut bt.words[row..row + bt.c_words]);
            }
        }
        bt
    }

    /// Height (including any padding baked into this buffer).
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width (including any padding baked into this buffer).
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Logical channel count (bits per pixel that carry data).
    #[inline]
    pub fn c(&self) -> usize {
        self.c_logical
    }

    /// Packed words per pixel.
    #[inline]
    pub fn c_words(&self) -> usize {
        self.c_words
    }

    /// Flat packed storage, pixel-major.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable flat packed storage.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Word offset of pixel (h, w).
    #[inline]
    pub fn pixel_words_index(&self, h: usize, w: usize) -> usize {
        debug_assert!(h < self.h && w < self.w);
        (h * self.w + w) * self.c_words
    }

    /// Packed channel words of pixel (h, w).
    #[inline]
    pub fn pixel_words(&self, h: usize, w: usize) -> &[u64] {
        let i = self.pixel_words_index(h, w);
        &self.words[i..i + self.c_words]
    }

    /// Contiguous row of pixels `[w0, w1)` at height `h` — the unit the
    /// PressedConv inner loop consumes (w and c are adjacent in memory).
    #[inline]
    pub fn row_words(&self, h: usize, w0: usize, w1: usize) -> &[u64] {
        debug_assert!(w0 <= w1 && w1 <= self.w);
        let start = self.pixel_words_index(h, w0);
        &self.words[start..start + (w1 - w0) * self.c_words]
    }

    /// Reads the logical {−1,+1} value of channel `c` at (h, w).
    #[inline]
    pub fn get(&self, h: usize, w: usize, c: usize) -> i32 {
        debug_assert!(c < self.c_logical);
        let word = self.pixel_words(h, w)[c / WORD_BITS];
        if (word >> (c % WORD_BITS)) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Sets channel `c` at (h, w) from a logical sign (+1 ↦ bit 1).
    pub fn set(&mut self, h: usize, w: usize, c: usize, v: i32) {
        assert!(c < self.c_logical);
        let i = self.pixel_words_index(h, w) + c / WORD_BITS;
        let bit = 1u64 << (c % WORD_BITS);
        if v >= 0 {
            self.words[i] |= bit;
        } else {
            self.words[i] &= !bit;
        }
    }

    /// Decodes back to a float NHWC tensor of {−1.0, +1.0}.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_fn(
            Shape::hwc(self.h, self.w, self.c_logical),
            Layout::Nhwc,
            |_, h, w, c| self.get(h, w, c) as f32,
        )
    }

    /// Verifies the press-tail invariant: all bits above `c_logical` in
    /// every pixel word are zero. Used by tests and debug assertions.
    pub fn tail_is_zero(&self) -> bool {
        let tail_bits = self.c_words * WORD_BITS - self.c_logical;
        if tail_bits == 0 {
            return true;
        }
        let mask = !0u64 << (WORD_BITS - tail_bits);
        (0..self.h)
            .all(|h| (0..self.w).all(|w| self.pixel_words(h, w)[self.c_words - 1] & mask == 0))
    }
}

/// A bank of binarized convolution filters, channel-packed like the
/// activations they convolve with.
///
/// Filter `k` occupies `kh·kw·c_words` consecutive words, laid out
/// (kh, kw, c_words) — the same (spatial, pressed-channel) order as a
/// [`BitTensor`] window, so filter and input words stream in lock-step.
#[derive(Clone, Debug)]
pub struct BitFilterBank {
    words: AlignedVec<u64>,
    shape: FilterShape,
    c_words: usize,
}

impl BitFilterBank {
    /// Allocates an all-zero bank.
    pub fn zeros(shape: FilterShape) -> Self {
        let c_words = words_for(shape.c);
        Self {
            words: AlignedVec::zeroed(shape.k * shape.kh * shape.kw * c_words),
            shape,
            c_words,
        }
    }

    /// Packs a float filter bank given as K tensors… in practice weights
    /// arrive as one flat slice in (k, kh, kw, c) order; this is the
    /// network-initialization-time packing (paper's network-level
    /// optimization: binarize + pack weights once, before inference).
    pub fn from_floats(weights: &[f32], shape: FilterShape) -> Self {
        assert_eq!(weights.len(), shape.numel(), "weight count vs shape");
        let mut bank = Self::zeros(shape);
        let c = shape.c;
        let cw = bank.c_words;
        for k in 0..shape.k {
            for i in 0..shape.kh {
                for j in 0..shape.kw {
                    let src = &weights[((k * shape.kh + i) * shape.kw + j) * c..][..c];
                    let dst_off = bank.tap_index(k, i, j);
                    pack_slice(src, &mut bank.words[dst_off..dst_off + cw]);
                }
            }
        }
        bank
    }

    /// Filter-bank shape.
    #[inline]
    pub fn shape(&self) -> FilterShape {
        self.shape
    }

    /// Packed words per channel vector.
    #[inline]
    pub fn c_words(&self) -> usize {
        self.c_words
    }

    /// Word offset of tap (k, i, j).
    #[inline]
    pub fn tap_index(&self, k: usize, i: usize, j: usize) -> usize {
        debug_assert!(k < self.shape.k && i < self.shape.kh && j < self.shape.kw);
        ((k * self.shape.kh + i) * self.shape.kw + j) * self.c_words
    }

    /// The entire packed bank, filter-major — filter `k` starts at word
    /// `k · kh · kw · c_words` (the layout the fused window kernels need).
    #[inline]
    pub fn filter_words_all(&self) -> &[u64] {
        &self.words
    }

    /// All words of filter `k`, in (kh, kw, c_words) order.
    #[inline]
    pub fn filter_words(&self, k: usize) -> &[u64] {
        let per = self.shape.kh * self.shape.kw * self.c_words;
        &self.words[k * per..(k + 1) * per]
    }

    /// Packed channel words of tap (k, i, j).
    #[inline]
    pub fn tap_words(&self, k: usize, i: usize, j: usize) -> &[u64] {
        let off = self.tap_index(k, i, j);
        &self.words[off..off + self.c_words]
    }

    /// One contiguous row of taps (k, i, 0..kw) — streams against
    /// [`BitTensor::row_words`].
    #[inline]
    pub fn tap_row_words(&self, k: usize, i: usize) -> &[u64] {
        let off = self.tap_index(k, i, 0);
        &self.words[off..off + self.shape.kw * self.c_words]
    }

    /// Logical {−1,+1} weight at (k, i, j, c).
    pub fn get(&self, k: usize, i: usize, j: usize, c: usize) -> i32 {
        assert!(c < self.shape.c);
        let w = self.tap_words(k, i, j)[c / WORD_BITS];
        if (w >> (c % WORD_BITS)) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Total packed size in bytes — used for the model-size rows of the
    /// paper's Table V (32× compression claim).
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pack_round_trip_exact_multiple() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::random(Shape::hwc(3, 4, 128), Layout::Nhwc, &mut rng);
        let bt = BitTensor::from_tensor(&t);
        assert_eq!(bt.c_words(), 2);
        assert!(bt.tail_is_zero());
        let back = bt.to_tensor();
        assert_eq!(back.max_abs_diff(&t.sign()), 0.0);
    }

    #[test]
    fn pack_round_trip_ragged_channels() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [1usize, 3, 31, 63, 65, 100] {
            let t = Tensor::random(Shape::hwc(2, 2, c), Layout::Nhwc, &mut rng);
            let bt = BitTensor::from_tensor(&t);
            assert!(bt.tail_is_zero(), "c={c}");
            assert_eq!(bt.to_tensor().max_abs_diff(&t.sign()), 0.0, "c={c}");
        }
    }

    #[test]
    fn from_nchw_matches_nhwc_pack() {
        let mut rng = StdRng::seed_from_u64(14);
        for c in [1usize, 64, 70, 129] {
            let t = Tensor::random(Shape::hwc(4, 5, c), Layout::Nhwc, &mut rng);
            let nchw = crate::layout::nhwc_to_nchw(&t);
            let a = BitTensor::from_tensor(&t);
            let b = BitTensor::from_nchw(&nchw, 4, 5, c);
            assert_eq!(a.words(), b.words(), "c={c}");
            assert!(b.tail_is_zero());
        }
    }

    #[test]
    fn padded_pack_leaves_margin_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::random(Shape::hwc(3, 3, 64), Layout::Nhwc, &mut rng);
        let bt = BitTensor::from_tensor_padded(&t, 1);
        assert_eq!((bt.h(), bt.w()), (5, 5));
        for w in 0..5 {
            assert!(bt.pixel_words(0, w).iter().all(|&x| x == 0));
            assert!(bt.pixel_words(4, w).iter().all(|&x| x == 0));
        }
        for h in 0..5 {
            assert!(bt.pixel_words(h, 0).iter().all(|&x| x == 0));
            assert!(bt.pixel_words(h, 4).iter().all(|&x| x == 0));
        }
        // Interior matches the unpadded packing.
        let plain = BitTensor::from_tensor(&t);
        for h in 0..3 {
            for w in 0..3 {
                assert_eq!(bt.pixel_words(h + 1, w + 1), plain.pixel_words(h, w));
            }
        }
    }

    #[test]
    fn set_get_round_trip() {
        let mut bt = BitTensor::zeros(2, 2, 70);
        bt.set(1, 1, 69, 1);
        bt.set(0, 1, 3, -1);
        assert_eq!(bt.get(1, 1, 69), 1);
        assert_eq!(bt.get(0, 1, 3), -1);
        assert_eq!(bt.get(1, 1, 68), -1);
        assert!(bt.tail_is_zero());
    }

    #[test]
    fn row_words_is_contiguous() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::random(Shape::hwc(2, 5, 64), Layout::Nhwc, &mut rng);
        let bt = BitTensor::from_tensor(&t);
        let row = bt.row_words(1, 1, 4);
        assert_eq!(row.len(), 3 * bt.c_words());
        assert_eq!(&row[..1], bt.pixel_words(1, 1));
        assert_eq!(&row[2..3], bt.pixel_words(1, 3));
    }

    #[test]
    fn filter_bank_pack_and_get() {
        let shape = FilterShape::new(2, 3, 3, 5);
        let weights: Vec<f32> = (0..shape.numel())
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let bank = BitFilterBank::from_floats(&weights, shape);
        for k in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    for c in 0..5 {
                        let flat = ((k * 3 + i) * 3 + j) * 5 + c;
                        let expect = if flat % 3 == 0 { 1 } else { -1 };
                        assert_eq!(bank.get(k, i, j, c), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn filter_words_partition() {
        let shape = FilterShape::new(3, 2, 2, 64);
        let bank = BitFilterBank::zeros(shape);
        assert_eq!(bank.filter_words(0).len(), 4);
        assert_eq!(bank.tap_row_words(1, 0).len(), 2);
        assert_eq!(bank.packed_bytes(), 3 * 4 * 8);
    }

    #[test]
    fn compression_is_32x_or_better() {
        // 512-channel 3x3 bank: float bytes = numel*4; packed = numel/64*8.
        let shape = FilterShape::new(512, 3, 3, 512);
        let bank = BitFilterBank::zeros(shape);
        let float_bytes = shape.numel() * 4;
        assert_eq!(float_bytes / bank.packed_bytes(), 32);
    }
}
