//! Serialization of tensors and packed weights.
//!
//! BitFlow is a stand-alone engine; models are stored in a simple
//! self-describing binary container (magic + JSON-serializable header +
//! raw little-endian payload) built on `serde` + `bytes`. This is enough to
//! persist trained weights from `bitflow-train` and reload them into the
//! inference engine, and to measure on-disk model size for Table V.

use crate::shape::{Layout, Shape};
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Container magic: "BTFL".
pub const MAGIC: u32 = 0x4254_464C;

/// Header describing one serialized tensor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorHeader {
    /// Logical shape.
    pub shape: Shape,
    /// Memory layout of the payload.
    pub layout: Layout,
    /// Element kind of the payload.
    pub dtype: DType,
}

/// Payload element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float payload.
    F32,
    /// Packed 64-bit word payload (pressed tensors).
    U64,
}

/// Errors from decoding a tensor container.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Bad magic number.
    BadMagic,
    /// Header did not parse.
    BadHeader,
    /// Payload shorter than the header promises.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (not a BitFlow tensor)"),
            DecodeError::BadHeader => write!(f, "malformed tensor header"),
            DecodeError::Truncated => write!(f, "payload truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a float tensor into the container format.
pub fn encode_tensor(t: &Tensor) -> Bytes {
    let header = TensorHeader {
        shape: t.shape(),
        layout: t.layout(),
        dtype: DType::F32,
    };
    let header_json = serde_json::to_vec(&header).expect("header serializes");
    let mut buf = BytesMut::with_capacity(12 + header_json.len() + t.data().len() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(header_json.len() as u32);
    buf.put_slice(&header_json);
    for &x in t.data() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserializes a float tensor from the container format.
pub fn decode_tensor(mut data: &[u8]) -> Result<Tensor, DecodeError> {
    if data.remaining() < 8 || data.get_u32_le() != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let hlen = data.get_u32_le() as usize;
    if data.remaining() < hlen {
        return Err(DecodeError::Truncated);
    }
    let header: TensorHeader =
        serde_json::from_slice(&data[..hlen]).map_err(|_| DecodeError::BadHeader)?;
    data.advance(hlen);
    if header.dtype != DType::F32 {
        return Err(DecodeError::BadHeader);
    }
    // Checked arithmetic: a hostile header can declare dimensions whose
    // product overflows, and the element count must never exceed what the
    // payload actually carries.
    let s = header.shape;
    let n =
        s.n.checked_mul(s.h)
            .and_then(|v| v.checked_mul(s.w))
            .and_then(|v| v.checked_mul(s.c))
            .ok_or(DecodeError::BadHeader)?;
    let payload_len = n.checked_mul(4).ok_or(DecodeError::BadHeader)?;
    if data.remaining() < payload_len {
        return Err(DecodeError::Truncated);
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(data.get_f32_le());
    }
    Ok(Tensor::from_vec(values, header.shape, header.layout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor::random(Shape::new(1, 3, 4, 5), Layout::Nhwc, &mut rng);
        let bytes = encode_tensor(&t);
        let back = decode_tensor(&bytes).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.layout(), t.layout());
        assert_eq!(back.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn rejects_bad_magic() {
        let t = Tensor::zeros(Shape::vec(4), Layout::Nhwc);
        let mut bytes = encode_tensor(&t).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_tensor(&bytes), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn rejects_truncation() {
        let t = Tensor::zeros(Shape::vec(100), Layout::Nhwc);
        let bytes = encode_tensor(&t);
        let cut = &bytes[..bytes.len() - 10];
        assert!(matches!(decode_tensor(cut), Err(DecodeError::Truncated)));
    }

    #[test]
    fn rejects_overflowing_shape_without_panicking() {
        // A hostile header declaring dimensions whose product overflows
        // usize must come back as a typed error, not an arithmetic panic.
        let header = format!(
            "{{\"shape\":{{\"n\":{0},\"h\":{0},\"w\":{0},\"c\":{0}}},\"layout\":\"Nhwc\",\"dtype\":\"F32\"}}",
            usize::MAX
        );
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(header.len() as u32);
        buf.put_slice(header.as_bytes());
        assert!(matches!(decode_tensor(&buf), Err(DecodeError::BadHeader)));
    }

    #[test]
    fn rejects_garbage_header() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(4);
        buf.put_slice(b"oops");
        assert!(matches!(decode_tensor(&buf), Err(DecodeError::BadHeader)));
    }
}
