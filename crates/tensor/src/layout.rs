//! Layout transformation helpers (NCHW ↔ NHWC).
//!
//! Mainstream frameworks ship weights/activations in NCHW; BitFlow's
//! locality-aware layout is NHWC. These converters run once at model-import
//! time (network level), never on the inference hot path.

use crate::shape::{Layout, Shape};
use crate::tensor::Tensor;

/// Converts a flat NCHW buffer into an NHWC [`Tensor`] (batch included).
pub fn nchw_to_nhwc(data: &[f32], shape: Shape) -> Tensor {
    assert_eq!(data.len(), shape.numel());
    let mut out = Tensor::zeros(shape, Layout::Nhwc);
    for n in 0..shape.n {
        for c in 0..shape.c {
            for h in 0..shape.h {
                for w in 0..shape.w {
                    let src = ((n * shape.c + c) * shape.h + h) * shape.w + w;
                    *out.at_mut(n, h, w, c) = data[src];
                }
            }
        }
    }
    out
}

/// Converts an NHWC [`Tensor`] into a flat NCHW buffer.
pub fn nhwc_to_nchw(t: &Tensor) -> Vec<f32> {
    assert_eq!(t.layout(), Layout::Nhwc);
    let s = t.shape();
    let mut out = vec![0.0f32; s.numel()];
    for n in 0..s.n {
        for c in 0..s.c {
            for h in 0..s.h {
                for w in 0..s.w {
                    out[((n * s.c + c) * s.h + h) * s.w + w] = t.at(n, h, w, c);
                }
            }
        }
    }
    out
}

/// Reorders convolution weights from the framework-standard (K, C, kh, kw)
/// order into BitFlow's (K, kh, kw, C) order expected by
/// [`crate::bittensor::BitFilterBank::from_floats`].
pub fn kchw_to_khwc(weights: &[f32], k: usize, c: usize, kh: usize, kw: usize) -> Vec<f32> {
    assert_eq!(weights.len(), k * c * kh * kw);
    let mut out = vec![0.0f32; weights.len()];
    for kk in 0..k {
        for cc in 0..c {
            for i in 0..kh {
                for j in 0..kw {
                    let src = ((kk * c + cc) * kh + i) * kw + j;
                    let dst = ((kk * kh + i) * kw + j) * c + cc;
                    out[dst] = weights[src];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn nchw_nhwc_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let shape = Shape::new(2, 3, 4, 5);
        let data: Vec<f32> = (0..shape.numel())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let t = nchw_to_nhwc(&data, shape);
        assert_eq!(nhwc_to_nchw(&t), data);
    }

    #[test]
    fn nchw_to_nhwc_places_elements() {
        // 1x2x2x2 NCHW: [c0: a b / c d, c1: e f / g h]
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let t = nchw_to_nhwc(&data, Shape::new(1, 2, 2, 2));
        assert_eq!(t.at(0, 0, 0, 0), 1.0);
        assert_eq!(t.at(0, 0, 0, 1), 5.0);
        assert_eq!(t.at(0, 1, 1, 0), 4.0);
        assert_eq!(t.at(0, 1, 1, 1), 8.0);
    }

    #[test]
    fn weight_reorder_round_trip_spot_check() {
        let (k, c, kh, kw) = (2, 3, 2, 2);
        let w: Vec<f32> = (0..k * c * kh * kw).map(|i| i as f32).collect();
        let r = kchw_to_khwc(&w, k, c, kh, kw);
        // (k=1, c=2, i=1, j=0) in KCHW order: ((1*3+2)*2+1)*2+0 = 22
        // lands at ((1*2+1)*2+0)*3+2 = 20 in KHWC order.
        assert_eq!(r[20], 22.0);
    }
}
