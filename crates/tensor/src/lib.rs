//! # bitflow-tensor
//!
//! Tensor substrate for the BitFlow binary-neural-network engine
//! (reproduction of *BitFlow: Exploiting Vector Parallelism for Binary
//! Neural Networks on CPU*, IPDPS 2018).
//!
//! This crate provides the data-layer primitives every other BitFlow crate
//! builds on:
//!
//! * [`Shape`] / [`Layout`] — 4-D tensor geometry with the paper's
//!   locality-aware **NHWC** layout (channels innermost, so that bit-packing
//!   along the channel dimension touches contiguous memory) as well as the
//!   conventional NCHW layout used by mainstream frameworks.
//! * [`AlignedVec`] — 64-byte-aligned heap buffers so SSE/AVX2/AVX-512 loads
//!   never straddle cache lines.
//! * [`Tensor`] — dense `f32` tensor with either layout.
//! * [`BitTensor`] — the *pressed* tensor of the paper's PressedConv
//!   algorithm: activations/weights binarized to {−1,+1}, encoded as
//!   {0,1} bits and packed along the channel dimension into `u64` words
//!   (a ×32–×64 "press", paper Fig. 3).
//! * [`bits::Bit64`] — the Rust equivalent of the paper's `bit64_t`/`bit64_u`
//!   bit-field/union pair (paper Table II) used for fused binarization and
//!   bit-packing.
//!
//! Encoding convention (paper §III): the logical value **+1 is stored as
//! bit 1**, **−1 as bit 0**, and `sign(0) = +1`.

pub mod alloc;
pub mod bits;
pub mod bittensor;
pub mod io;
pub mod layout;
pub mod shape;
pub mod tensor;

pub use alloc::AlignedVec;
pub use bits::{binarize_f32, Bit64};
pub use bittensor::{BitFilterBank, BitTensor};
pub use shape::{FilterShape, Layout, Shape};
pub use tensor::Tensor;

/// Number of channel bits packed into one storage word.
///
/// The paper packs into 32-bit `unsigned int`s first and then widens into
/// 128/256/512-bit SIMD registers; we pack directly into `u64` words (the
/// natural scalar word on x86-64) and let the SIMD layer widen further.
pub const WORD_BITS: usize = 64;

/// Returns the number of `u64` words needed to hold `c` channel bits.
#[inline]
pub const fn words_for(c: usize) -> usize {
    c.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(512), 8);
        assert_eq!(words_for(513), 9);
    }
}
