//! 4-D tensor geometry: shapes, layouts and linear indexing.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory layout of a 4-D activation tensor.
///
/// BitFlow adopts **NHWC** (channels innermost) as its locality-aware layout
/// (paper §III-B): bit-packing runs along the channel dimension, so channels
/// of a pixel must be contiguous; retrieving the h×w×C neighborhood a
/// convolution needs then touches dense, sequential memory. NCHW — the
/// default in Caffe/MXNet/PyTorch — is provided for interop and for the
/// layout-cost ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// batch, height, width, channel — channels innermost (BitFlow default).
    Nhwc,
    /// batch, channel, height, width — framework default, pack-unfriendly.
    Nchw,
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::Nhwc => write!(f, "NHWC"),
            Layout::Nchw => write!(f, "NCHW"),
        }
    }
}

/// Logical shape of a 4-D tensor, stored as (n, h, w, c) regardless of the
/// memory layout. BitFlow targets batch-1 inference, but `n` is kept general.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Batch size (1 for latency-oriented inference).
    pub n: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
    /// Channels.
    pub c: usize,
}

impl Shape {
    /// Creates a full 4-D shape.
    pub const fn new(n: usize, h: usize, w: usize, c: usize) -> Self {
        Self { n, h, w, c }
    }

    /// Single-image shape (n = 1), the common case in this engine.
    pub const fn hwc(h: usize, w: usize, c: usize) -> Self {
        Self { n: 1, h, w, c }
    }

    /// A flat vector shape (n=1, h=1, w=1), used for FC activations.
    pub const fn vec(c: usize) -> Self {
        Self {
            n: 1,
            h: 1,
            w: 1,
            c,
        }
    }

    /// Total number of elements.
    #[inline]
    pub const fn numel(&self) -> usize {
        self.n * self.h * self.w * self.c
    }

    /// Number of spatial positions per image.
    #[inline]
    pub const fn pixels(&self) -> usize {
        self.h * self.w
    }

    /// Linear offset of element (n, h, w, c) in the given layout.
    ///
    /// For NHWC this is the paper's formula `(h·W + w)·C + c` (extended with
    /// the batch dimension).
    #[inline]
    pub fn offset(&self, layout: Layout, n: usize, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(n < self.n && h < self.h && w < self.w && c < self.c);
        match layout {
            Layout::Nhwc => ((n * self.h + h) * self.w + w) * self.c + c,
            Layout::Nchw => ((n * self.c + c) * self.h + h) * self.w + w,
        }
    }

    /// Shape after spatially padding by `p` on every border.
    pub const fn padded(&self, p: usize) -> Self {
        Self {
            n: self.n,
            h: self.h + 2 * p,
            w: self.w + 2 * p,
            c: self.c,
        }
    }

    /// Output spatial shape of a conv/pool with the given kernel and stride
    /// over *this* (already padded, if any) shape. Returns (out_h, out_w).
    ///
    /// This is the *shape inferer* arithmetic of the vector execution
    /// scheduler (paper §III-B).
    pub const fn conv_out(&self, kh: usize, kw: usize, stride: usize) -> (usize, usize) {
        ((self.h - kh) / stride + 1, (self.w - kw) / stride + 1)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.h, self.w, self.c)
    }
}

/// Shape of a convolution filter bank: K filters of kh×kw×C.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilterShape {
    /// Number of output features (filters).
    pub k: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Input channels.
    pub c: usize,
}

impl FilterShape {
    /// Creates a filter-bank shape.
    pub const fn new(k: usize, kh: usize, kw: usize, c: usize) -> Self {
        Self { k, kh, kw, c }
    }

    /// Total number of weights.
    pub const fn numel(&self) -> usize {
        self.k * self.kh * self.kw * self.c
    }

    /// Weights per single filter.
    pub const fn per_filter(&self) -> usize {
        self.kh * self.kw * self.c
    }
}

impl fmt::Display for FilterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x({}x{}x{})", self.k, self.kh, self.kw, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_pixels() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.pixels(), 12);
        assert_eq!(Shape::vec(10).numel(), 10);
    }

    #[test]
    fn nhwc_offset_matches_paper_formula() {
        // Paper: A[h,w,c] at (h·W + w)·C + c for n = 0.
        let s = Shape::hwc(3, 5, 7);
        for h in 0..3 {
            for w in 0..5 {
                for c in 0..7 {
                    assert_eq!(s.offset(Layout::Nhwc, 0, h, w, c), (h * 5 + w) * 7 + c);
                }
            }
        }
    }

    #[test]
    fn nchw_offset() {
        let s = Shape::hwc(3, 5, 7);
        assert_eq!(s.offset(Layout::Nchw, 0, 0, 0, 0), 0);
        assert_eq!(s.offset(Layout::Nchw, 0, 0, 1, 0), 1);
        assert_eq!(s.offset(Layout::Nchw, 0, 1, 0, 0), 5);
        assert_eq!(s.offset(Layout::Nchw, 0, 0, 0, 1), 15);
    }

    #[test]
    fn offsets_are_bijective() {
        let s = Shape::new(2, 3, 4, 5);
        for &layout in &[Layout::Nhwc, Layout::Nchw] {
            let mut seen = vec![false; s.numel()];
            for n in 0..s.n {
                for h in 0..s.h {
                    for w in 0..s.w {
                        for c in 0..s.c {
                            let off = s.offset(layout, n, h, w, c);
                            assert!(!seen[off], "duplicate offset in {layout}");
                            seen[off] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn padding_and_conv_out() {
        let s = Shape::hwc(112, 112, 64);
        let p = s.padded(1);
        assert_eq!((p.h, p.w), (114, 114));
        // 3x3 stride-1 conv over the padded input keeps 112x112.
        assert_eq!(p.conv_out(3, 3, 1), (112, 112));
        // 2x2 stride-2 pool halves.
        assert_eq!(s.conv_out(2, 2, 2), (56, 56));
    }

    #[test]
    fn filter_shape_counts() {
        let f = FilterShape::new(128, 3, 3, 64);
        assert_eq!(f.numel(), 128 * 9 * 64);
        assert_eq!(f.per_filter(), 576);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Shape::hwc(2, 3, 4).to_string(), "1x2x3x4");
        assert_eq!(FilterShape::new(8, 3, 3, 16).to_string(), "8x(3x3x16)");
        assert_eq!(Layout::Nhwc.to_string(), "NHWC");
    }
}
