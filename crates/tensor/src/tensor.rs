//! Dense `f32` tensors with NHWC or NCHW layout.

use crate::alloc::AlignedVec;
use crate::shape::{Layout, Shape};
use rand::Rng;

/// A dense 4-D `f32` tensor.
///
/// The float domain serves three roles in BitFlow: (1) the full-precision
/// baseline operators; (2) the pre-binarization inputs of the first network
/// layer; (3) the accumulator domain of binary operators (xor+popcount
/// produces integer dot products which are scaled back to float).
#[derive(Clone, Debug)]
pub struct Tensor {
    data: AlignedVec<f32>,
    shape: Shape,
    layout: Layout,
}

impl Tensor {
    /// Allocates a zero-filled tensor.
    pub fn zeros(shape: Shape, layout: Layout) -> Self {
        Self {
            data: AlignedVec::zeroed(shape.numel()),
            shape,
            layout,
        }
    }

    /// Builds a tensor from existing data in the given layout.
    ///
    /// # Panics
    /// If `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape, layout: Layout) -> Self {
        assert_eq!(data.len(), shape.numel(), "data length vs shape");
        Self {
            data: AlignedVec::from_slice(&data),
            shape,
            layout,
        }
    }

    /// Builds a tensor by evaluating `f(n, h, w, c)` for every element.
    pub fn from_fn(
        shape: Shape,
        layout: Layout,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Self::zeros(shape, layout);
        for n in 0..shape.n {
            for h in 0..shape.h {
                for w in 0..shape.w {
                    for c in 0..shape.c {
                        *t.at_mut(n, h, w, c) = f(n, h, w, c);
                    }
                }
            }
        }
        t
    }

    /// Fills with uniform random values in [-1, 1) — the standard input for
    /// performance experiments, where values only matter through their sign.
    pub fn random(shape: Shape, layout: Layout, rng: &mut impl Rng) -> Self {
        let mut t = Self::zeros(shape, layout);
        for x in t.data.as_mut_slice() {
            *x = rng.gen_range(-1.0..1.0);
        }
        t
    }

    /// Shape accessor.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Layout accessor.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Flat data slice in storage order.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice in storage order.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, h: usize, w: usize, c: usize) -> f32 {
        self.data[self.shape.offset(self.layout, n, h, w, c)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, h: usize, w: usize, c: usize) -> &mut f32 {
        let off = self.shape.offset(self.layout, n, h, w, c);
        &mut self.data[off]
    }

    /// Returns the channel vector at pixel (n, h, w) as a contiguous slice.
    ///
    /// Only valid in NHWC layout — this contiguity is exactly why BitFlow
    /// picks NHWC: the bit-packer consumes whole channel vectors.
    #[inline]
    pub fn pixel_channels(&self, n: usize, h: usize, w: usize) -> &[f32] {
        assert_eq!(self.layout, Layout::Nhwc, "channel slices need NHWC");
        let start = self.shape.offset(self.layout, n, h, w, 0);
        &self.data[start..start + self.shape.c]
    }

    /// Converts to the other layout, copying (see [`crate::layout`]).
    pub fn to_layout(&self, layout: Layout) -> Tensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor::zeros(self.shape, layout);
        for n in 0..self.shape.n {
            for h in 0..self.shape.h {
                for w in 0..self.shape.w {
                    for c in 0..self.shape.c {
                        *out.at_mut(n, h, w, c) = self.at(n, h, w, c);
                    }
                }
            }
        }
        out
    }

    /// Element-wise `sign` into a new float tensor of {−1.0, +1.0} — the
    /// binarized-but-unpacked domain used by reference implementations.
    pub fn sign(&self) -> Tensor {
        let mut out = self.clone();
        for x in out.data.as_mut_slice() {
            *x = if *x >= 0.0 { 1.0 } else { -1.0 };
        }
        out
    }

    /// Maximum absolute difference against another tensor of the same shape
    /// and layout.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape);
        assert_eq!(self.layout, other.layout);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zeros_and_accessors() {
        let mut t = Tensor::zeros(Shape::hwc(2, 3, 4), Layout::Nhwc);
        assert_eq!(t.data().len(), 24);
        *t.at_mut(0, 1, 2, 3) = 5.0;
        assert_eq!(t.at(0, 1, 2, 3), 5.0);
        assert_eq!(t.data()[(3 + 2) * 4 + 3], 5.0);
    }

    #[test]
    fn from_fn_addresses_every_element() {
        let s = Shape::new(2, 2, 2, 2);
        for &layout in &[Layout::Nhwc, Layout::Nchw] {
            let t = Tensor::from_fn(s, layout, |n, h, w, c| {
                (n * 1000 + h * 100 + w * 10 + c) as f32
            });
            assert_eq!(t.at(1, 0, 1, 0), 1010.0);
            assert_eq!(t.at(0, 1, 1, 1), 111.0);
        }
    }

    #[test]
    fn layout_round_trip_preserves_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::random(Shape::new(1, 4, 5, 6), Layout::Nhwc, &mut rng);
        let u = t.to_layout(Layout::Nchw);
        let back = u.to_layout(Layout::Nhwc);
        assert_eq!(t.max_abs_diff(&back), 0.0);
        // Logical elements agree across layouts.
        assert_eq!(t.at(0, 2, 3, 4), u.at(0, 2, 3, 4));
    }

    #[test]
    fn pixel_channels_contiguous_nhwc() {
        let t = Tensor::from_fn(Shape::hwc(2, 2, 3), Layout::Nhwc, |_, h, w, c| {
            (h * 100 + w * 10 + c) as f32
        });
        assert_eq!(t.pixel_channels(0, 1, 0), &[100.0, 101.0, 102.0]);
    }

    #[test]
    #[should_panic(expected = "NHWC")]
    fn pixel_channels_rejects_nchw() {
        let t = Tensor::zeros(Shape::hwc(2, 2, 3), Layout::Nchw);
        let _ = t.pixel_channels(0, 0, 0);
    }

    #[test]
    fn sign_maps_to_pm_one() {
        let t = Tensor::from_vec(vec![0.5, -0.5, 0.0, -7.0], Shape::vec(4), Layout::Nhwc);
        assert_eq!(t.sign().data(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn random_in_range_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = Tensor::random(Shape::vec(100), Layout::Nhwc, &mut r1);
        let b = Tensor::random(Shape::vec(100), Layout::Nhwc, &mut r2);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(vec![0.0; 3], Shape::vec(4), Layout::Nhwc);
    }
}
