//! Property tests for the tensor substrate: indexing bijectivity, packing
//! round-trips, layout conversions, padding invariants, serialization.

use bitflow_tensor::io::{decode_tensor, encode_tensor};
use bitflow_tensor::layout::{kchw_to_khwc, nchw_to_nhwc, nhwc_to_nchw};
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..3, 1usize..6, 1usize..6, 1usize..80)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn offsets_bijective_both_layouts((n, h, w, c) in small_dims()) {
        let s = Shape::new(n, h, w, c);
        for layout in [Layout::Nhwc, Layout::Nchw] {
            let mut seen = vec![false; s.numel()];
            for nn in 0..n {
                for hh in 0..h {
                    for ww in 0..w {
                        for cc in 0..c {
                            let off = s.offset(layout, nn, hh, ww, cc);
                            prop_assert!(!seen[off]);
                            seen[off] = true;
                        }
                    }
                }
            }
            prop_assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn bit_pack_roundtrip(
        h in 1usize..5,
        w in 1usize..5,
        c in 1usize..140,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::from_fn(Shape::hwc(h, w, c), Layout::Nhwc, |_, _, _, _| {
            rng.gen_range(-1.0f32..1.0)
        });
        let bt = BitTensor::from_tensor(&t);
        prop_assert!(bt.tail_is_zero());
        prop_assert_eq!(bt.to_tensor().max_abs_diff(&t.sign()), 0.0);
    }

    #[test]
    fn padded_pack_interior_equals_plain(
        h in 1usize..5,
        w in 1usize..5,
        c in 1usize..100,
        pad in 0usize..3,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(Shape::hwc(h, w, c), Layout::Nhwc, &mut rng);
        let plain = BitTensor::from_tensor(&t);
        let padded = BitTensor::from_tensor_padded(&t, pad);
        prop_assert_eq!((padded.h(), padded.w()), (h + 2 * pad, w + 2 * pad));
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(padded.pixel_words(y + pad, x + pad), plain.pixel_words(y, x));
            }
        }
        // Margin all-zero (logical −1).
        for y in 0..padded.h() {
            for x in 0..padded.w() {
                let inside = y >= pad && y < h + pad && x >= pad && x < w + pad;
                if !inside {
                    prop_assert!(padded.pixel_words(y, x).iter().all(|&v| v == 0));
                }
            }
        }
    }

    #[test]
    fn layout_roundtrip((n, h, w, c) in small_dims(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(Shape::new(n, h, w, c), Layout::Nhwc, &mut rng);
        let nchw = nhwc_to_nchw(&t);
        let back = nchw_to_nhwc(&nchw, t.shape());
        prop_assert_eq!(back.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn weight_reorder_preserves_elements(
        k in 1usize..4,
        c in 1usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let (kh, kw) = (3usize, 3usize);
        let w: Vec<f32> = (0..k * c * kh * kw).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let r = kchw_to_khwc(&w, k, c, kh, kw);
        // Check every element lands at the right place.
        for kk in 0..k {
            for cc in 0..c {
                for i in 0..kh {
                    for j in 0..kw {
                        let src = ((kk * c + cc) * kh + i) * kw + j;
                        let dst = ((kk * kh + i) * kw + j) * c + cc;
                        prop_assert_eq!(w[src], r[dst]);
                    }
                }
            }
        }
    }

    #[test]
    fn filter_bank_decode_matches_sign(
        k in 1usize..4,
        c in 1usize..70,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let fshape = FilterShape::new(k, 3, 3, c);
        let w: Vec<f32> = (0..fshape.numel()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let bank = BitFilterBank::from_floats(&w, fshape);
        for kk in 0..k {
            for i in 0..3 {
                for j in 0..3 {
                    for cc in 0..c {
                        let v = w[((kk * 3 + i) * 3 + j) * c + cc];
                        let want = if v >= 0.0 { 1 } else { -1 };
                        prop_assert_eq!(bank.get(kk, i, j, cc), want);
                    }
                }
            }
        }
    }

    #[test]
    fn io_roundtrip((n, h, w, c) in small_dims(), seed in any::<u64>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(Shape::new(n, h, w, c), Layout::Nhwc, &mut rng);
        let bytes = encode_tensor(&t);
        let back = decode_tensor(&bytes).unwrap();
        prop_assert_eq!(back.shape(), t.shape());
        prop_assert_eq!(back.max_abs_diff(&t), 0.0);
    }

    #[test]
    fn io_rejects_any_truncation(
        cut in 1usize..32,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::random(Shape::vec(40), Layout::Nhwc, &mut rng);
        let bytes = encode_tensor(&t);
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(decode_tensor(&bytes[..bytes.len() - cut]).is_err());
    }
}
