//! Synthetic image datasets for the accuracy experiment.
//!
//! Table V substitutes (DESIGN.md §3):
//!
//! * [`glyphs`] — the MNIST analogue: 10 classes of procedural glyphs
//!   (bar/cross/box/diagonal motifs) on a 12×12 single-channel canvas with
//!   jitter and additive noise. Linearly separable-ish; both float and
//!   binary models should score high.
//! * [`textures`] — the CIFAR/ImageNet-difficulty analogue: each class is a
//!   random ±1 texture prototype; samples are the prototype with a large
//!   fraction of pixels flipped and Gaussian noise added. Much harder;
//!   binarization costs visibly more accuracy here, reproducing the
//!   paper's widening gap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of classes in both datasets.
pub const NUM_CLASSES: usize = 10;
/// Canvas side length.
pub const SIDE: usize = 12;

/// A labeled dataset of single-channel SIDE×SIDE images in [−1, 1].
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Flat images, sample-major, NHWC (c = 1).
    pub images: Vec<f32>,
    /// Labels in `0..NUM_CLASSES`.
    pub labels: Vec<usize>,
    /// Canvas height/width.
    pub side: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Pixels per image.
    pub fn image_len(&self) -> usize {
        self.side * self.side
    }

    /// Image `i` as a slice.
    pub fn image(&self, i: usize) -> &[f32] {
        &self.images[i * self.image_len()..(i + 1) * self.image_len()]
    }
}

fn glyph_prototype(class: usize, canvas: &mut [f32]) {
    let s = SIDE;
    let set = |canvas: &mut [f32], y: usize, x: usize| canvas[y * s + x] = 1.0;
    match class {
        0 => {
            // horizontal bar, upper third
            for x in 1..s - 1 {
                set(canvas, 3, x);
            }
        }
        1 => {
            // vertical bar, center
            for y in 1..s - 1 {
                set(canvas, y, s / 2);
            }
        }
        2 => {
            // cross
            for t in 1..s - 1 {
                set(canvas, t, s / 2);
                set(canvas, s / 2, t);
            }
        }
        3 => {
            // box outline
            for t in 2..s - 2 {
                set(canvas, 2, t);
                set(canvas, s - 3, t);
                set(canvas, t, 2);
                set(canvas, t, s - 3);
            }
        }
        4 => {
            // main diagonal
            for t in 0..s {
                set(canvas, t, t);
            }
        }
        5 => {
            // anti-diagonal
            for t in 0..s {
                set(canvas, t, s - 1 - t);
            }
        }
        6 => {
            // two horizontal bars
            for x in 1..s - 1 {
                set(canvas, 3, x);
                set(canvas, s - 4, x);
            }
        }
        7 => {
            // two vertical bars
            for y in 1..s - 1 {
                set(canvas, y, 3);
                set(canvas, y, s - 4);
            }
        }
        8 => {
            // filled square center
            for y in s / 2 - 2..s / 2 + 2 {
                for x in s / 2 - 2..s / 2 + 2 {
                    set(canvas, y, x);
                }
            }
        }
        _ => {
            // X shape
            for t in 0..s {
                set(canvas, t, t);
                set(canvas, t, s - 1 - t);
            }
        }
    }
}

/// The MNIST-analogue glyph dataset: `n` samples, seeded.
///
/// Each sample: class prototype, shifted by ±1 pixel in each axis,
/// background −1, foreground +1, plus N(0, noise) additive noise.
pub fn glyphs(n: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let pixels = SIDE * SIDE;
    let mut images = Vec::with_capacity(n * pixels);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES;
        let mut proto = vec![-1.0f32; pixels];
        glyph_prototype(class, &mut proto);
        let (dy, dx) = (rng.gen_range(-1i32..=1), rng.gen_range(-1i32..=1));
        for y in 0..SIDE {
            for x in 0..SIDE {
                let sy = y as i32 - dy;
                let sx = x as i32 - dx;
                let v = if sy >= 0 && sy < SIDE as i32 && sx >= 0 && sx < SIDE as i32 {
                    proto[(sy as usize) * SIDE + sx as usize]
                } else {
                    -1.0
                };
                // Box–Muller Gaussian noise.
                let u1: f32 = rng.gen_range(1e-6f32..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                images.push((v + noise * g).clamp(-1.5, 1.5));
            }
        }
        labels.push(class);
    }
    Dataset {
        images,
        labels,
        side: SIDE,
    }
}

/// The hard texture dataset: class prototypes are random ±1 **block
/// textures** — a 4×4 grid of 3×3 constant-sign cells — so the signal
/// survives convolution + pooling (a pixel-i.i.d. prototype would not);
/// each sample flips `flip_prob` of the pixels and adds noise.
///
/// Prototypes depend only on `proto_seed = seed / 1000` (pass seeds like
/// 3000, 3001 for a train/test pair over the same classes).
pub fn textures(n: usize, flip_prob: f32, noise: f32, seed: u64) -> Dataset {
    textures_cell(n, flip_prob, noise, seed, 3)
}

/// [`textures`] with a configurable cell size. Smaller cells mean finer
/// spatial detail that pooling + activation binarization progressively
/// destroy — the "ImageNet-difficulty" rung of the accuracy experiment
/// uses `cell = 2`.
pub fn textures_cell(n: usize, flip_prob: f32, noise: f32, seed: u64, cell: usize) -> Dataset {
    assert!(
        cell > 0 && SIDE.is_multiple_of(cell),
        "cell must divide SIDE"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let pixels = SIDE * SIDE;
    let grid = SIDE / cell;
    // Fixed prototypes shared by all seeds in the same thousand-block, so
    // train/test splits see the same classes.
    let mut proto_rng = StdRng::seed_from_u64((seed / 1000) ^ 0x5EED_7E47);
    let prototypes: Vec<Vec<f32>> = (0..NUM_CLASSES)
        .map(|_| {
            let cells: Vec<f32> = (0..grid * grid)
                .map(|_| if proto_rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            (0..pixels)
                .map(|p| {
                    let (y, x) = (p / SIDE, p % SIDE);
                    cells[(y / cell) * grid + x / cell]
                })
                .collect()
        })
        .collect();
    let mut images = Vec::with_capacity(n * pixels);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % NUM_CLASSES;
        for &proto in &prototypes[class] {
            let mut v = proto;
            if rng.gen::<f32>() < flip_prob {
                v = -v;
            }
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            images.push((v + noise * g).clamp(-1.5, 1.5));
        }
        labels.push(class);
    }
    Dataset {
        images,
        labels,
        side: SIDE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_shapes_and_labels() {
        let d = glyphs(100, 0.1, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.images.len(), 100 * 144);
        assert!(d.labels.iter().all(|&l| l < NUM_CLASSES));
        // Balanced classes.
        for c in 0..NUM_CLASSES {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn glyphs_deterministic_per_seed() {
        let a = glyphs(20, 0.2, 42);
        let b = glyphs(20, 0.2, 42);
        let c = glyphs(20, 0.2, 43);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn noiseless_glyphs_are_pm1() {
        let d = glyphs(10, 0.0, 7);
        assert!(d.images.iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn texture_prototypes_shared_across_calls() {
        // Same seed, different sample counts → same class-0 prototype
        // (modulo per-sample noise); verify via majority vote over samples.
        let d = textures(500, 0.0, 0.0, 9);
        let first = d.image(0).to_vec();
        // With flip_prob 0, every class-0 sample equals the prototype.
        assert_eq!(d.image(10), &first[..]);
        assert_eq!(d.image(490), &first[..]);
    }

    #[test]
    fn textures_get_harder_with_flip_prob() {
        let easy = textures(50, 0.0, 0.0, 3);
        let hard = textures(50, 0.4, 0.0, 3);
        // Hamming distance of sample 0 to sample 10 (same class) grows.
        let dist = |d: &Dataset| {
            d.image(0)
                .iter()
                .zip(d.image(10))
                .filter(|(a, b)| (**a >= 0.0) != (**b >= 0.0))
                .count()
        };
        assert_eq!(dist(&easy), 0);
        assert!(dist(&hard) > 20, "hard dist {}", dist(&hard));
    }
}
