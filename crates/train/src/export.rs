//! Export a trained binary model into the BitFlow inference engine.
//!
//! The conv-net/MLP architectures of [`crate::model::Model`] are designed
//! to map 1:1 onto [`bitflow_graph`] specs:
//!
//! | trained block | engine layers |
//! |---|---|
//! | `BinaryConv → Pool → BN` | `Conv{w, bn}` (folded-threshold sign) + `Pool` |
//! | `BinaryDense → BN` | `Fc{w, bn}` (FcSign) |
//! | `BinaryDense` head | `Fc{w, identity BN}` (FcOut) |
//!
//! Exactness argument: the engine computes `pool(sign(BN(conv(x))))` while
//! the trained model computes `sign(BN(pool(conv(x))))` at the next layer's
//! input; with strictly positive γ (enforced during training) BN is a
//! per-channel increasing map, and `max` commutes with increasing maps, so
//! the two orders produce identical bits. The test below asserts the
//! end-to-end predictions agree exactly.

use crate::layers::Mode;
use crate::model::{Model, ModelLayer};
use bitflow_graph::spec::{LayerSpec, NetworkSpec};
use bitflow_graph::weights::{BnParams, LayerWeights, NetworkWeights};
use bitflow_ops::ConvParams;
use bitflow_tensor::{FilterShape, Shape};

/// Converts a trained binary model into an engine spec + weights.
///
/// # Panics
/// If the model is not in binary mode or does not follow one of the
/// engine-compatible layer patterns.
pub fn export(model: &Model) -> (NetworkSpec, NetworkWeights) {
    assert_eq!(model.mode, Mode::Binary, "only binary models export");
    let input = match model.input {
        crate::layers::batch::SampleShape::Map { h, w, c } => Shape::hwc(h, w, c),
        crate::layers::batch::SampleShape::Vec { n } => Shape::vec(n),
    };
    let mut layers = Vec::new();
    let mut weights = Vec::new();
    let mut conv_count = 0usize;
    let mut fc_count = 0usize;
    let mut i = 0;
    let n_layers = model.layers.len();
    while i < n_layers {
        match &model.layers[i] {
            ModelLayer::Conv(conv) => {
                // Expect Conv → Pool → BN.
                let pool_ok = matches!(model.layers.get(i + 1), Some(ModelLayer::Pool(_)));
                let bn = match model.layers.get(i + 2) {
                    Some(ModelLayer::Bn(bn)) => bn,
                    _ => panic!("binary conv must be followed by Pool, BN"),
                };
                assert!(pool_ok, "binary conv must be followed by Pool, BN");
                assert!(
                    bn.gamma.iter().all(|&g| g > 0.0),
                    "export requires strictly positive BN scales"
                );
                conv_count += 1;
                layers.push(LayerSpec::Conv {
                    name: format!("conv{conv_count}"),
                    k: conv.k,
                    params: ConvParams::VGG_CONV,
                });
                weights.push(LayerWeights::Conv {
                    w: conv.w.clone(),
                    fshape: FilterShape::new(conv.k, 3, 3, conv.c),
                    bn: BnParams {
                        gamma: bn.gamma.clone(),
                        beta: bn.beta.clone(),
                        mean: bn.running_mean.clone(),
                        var: bn.running_var.clone(),
                        eps: bn.eps(),
                    },
                });
                layers.push(LayerSpec::Pool {
                    name: format!("pool{conv_count}"),
                    params: ConvParams::VGG_POOL,
                });
                weights.push(LayerWeights::Pool);
                i += 3;
            }
            ModelLayer::Dense(dense) => {
                fc_count += 1;
                // Head (last layer) gets identity BN; hidden FCs take the
                // following BN layer.
                let bn = match model.layers.get(i + 1) {
                    Some(ModelLayer::Bn(bn)) => {
                        assert!(
                            bn.gamma.iter().all(|&g| g > 0.0),
                            "export requires strictly positive BN scales"
                        );
                        i += 2;
                        BnParams {
                            gamma: bn.gamma.clone(),
                            beta: bn.beta.clone(),
                            mean: bn.running_mean.clone(),
                            var: bn.running_var.clone(),
                            eps: bn.eps(),
                        }
                    }
                    _ => {
                        i += 1;
                        BnParams::identity(dense.k)
                    }
                };
                layers.push(LayerSpec::Fc {
                    name: format!("fc{fc_count}"),
                    k: dense.k,
                });
                weights.push(LayerWeights::Fc {
                    w: dense.w.clone(),
                    n: dense.n,
                    k: dense.k,
                    bn,
                });
            }
            ModelLayer::Flatten => {
                i += 1; // implicit in the engine
            }
            other => panic!(
                "layer not representable in the binary engine: {}",
                match other {
                    ModelLayer::Relu(_) => "relu",
                    ModelLayer::Bn(_) => "dangling batch-norm",
                    ModelLayer::Pool(_) => "dangling pool",
                    _ => "unknown",
                }
            ),
        }
    }
    (
        NetworkSpec {
            name: "exported".into(),
            input,
            layers,
        },
        NetworkWeights { layers: weights },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{glyphs, SIDE};
    use crate::model::TrainConfig;
    use bitflow_graph::Network;
    use bitflow_tensor::{Layout, Tensor};
    use rand::{rngs::StdRng, SeedableRng};

    fn engine_predictions(net: &mut Network, data: &crate::data::Dataset) -> Vec<usize> {
        (0..data.len())
            .map(|i| {
                let img = Tensor::from_vec(data.image(i).to_vec(), net.spec().input, Layout::Nhwc);
                let logits = net.infer(&img);
                logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn exported_conv_net_matches_trained_model_exactly() {
        let train = glyphs(150, 0.1, 20);
        let test = glyphs(60, 0.1, 21);
        let mut rng = StdRng::seed_from_u64(30);
        let mut model = Model::conv_net(SIDE, 1, &[8], 10, Mode::Binary, &mut rng);
        let _ = model.fit(
            &train,
            &TrainConfig {
                epochs: 4,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        // Trained-model logits (inference mode).
        let model_logits = model.predict(&test);
        // Engine logits.
        let (spec, weights) = export(&model);
        let mut net = Network::compile(&spec, &weights);
        for i in 0..test.len() {
            let img = Tensor::from_vec(test.image(i).to_vec(), spec.input, Layout::Nhwc);
            let got = net.infer(&img);
            let want = model_logits.sample(i);
            assert_eq!(got.as_slice(), want, "sample {i}: engine vs trained model");
        }
    }

    #[test]
    fn exported_mlp_matches_trained_model_exactly() {
        let train = glyphs(150, 0.1, 22);
        let test = glyphs(50, 0.1, 23);
        let mut rng = StdRng::seed_from_u64(31);
        let mut model = Model::mlp(SIDE * SIDE, &[64], 10, Mode::Binary, &mut rng);
        let _ = model.fit(
            &train,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        let model_logits = model.predict(&test);
        let (spec, weights) = export(&model);
        let mut net = Network::compile(&spec, &weights);
        for i in 0..test.len() {
            let img = Tensor::from_vec(test.image(i).to_vec(), spec.input, Layout::Nhwc);
            let got = net.infer(&img);
            assert_eq!(got.as_slice(), model_logits.sample(i), "sample {i}");
        }
    }

    #[test]
    fn engine_accuracy_equals_model_accuracy() {
        let train = glyphs(200, 0.15, 24);
        let test = glyphs(80, 0.15, 25);
        let mut rng = StdRng::seed_from_u64(32);
        let mut model = Model::conv_net(SIDE, 1, &[8], 10, Mode::Binary, &mut rng);
        let _ = model.fit(
            &train,
            &TrainConfig {
                epochs: 5,
                batch_size: 16,
                ..TrainConfig::default()
            },
        );
        let model_acc = model.evaluate(&test);
        let (spec, weights) = export(&model);
        let mut net = Network::compile(&spec, &weights);
        let preds = engine_predictions(&mut net, &test);
        let engine_acc = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p == l)
            .count() as f32
            / test.len() as f32;
        assert_eq!(model_acc, engine_acc);
    }

    #[test]
    #[should_panic(expected = "only binary models")]
    fn float_model_rejected() {
        let mut rng = StdRng::seed_from_u64(33);
        let model = Model::mlp(4, &[4], 2, Mode::Float, &mut rng);
        let _ = export(&model);
    }
}
