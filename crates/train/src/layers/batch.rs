//! Mini-batch container for training.

/// A batch of activations: `b` samples, each either a flat feature vector
/// or an NHWC map. Data is row-major `(sample, h, w, c)` / `(sample, feat)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// Flat storage.
    pub data: Vec<f32>,
    /// Samples in the batch.
    pub b: usize,
    /// Per-sample geometry.
    pub shape: SampleShape,
}

/// Geometry of one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleShape {
    /// Spatial map (NHWC within the sample).
    Map {
        /// Height.
        h: usize,
        /// Width.
        w: usize,
        /// Channels.
        c: usize,
    },
    /// Flat vector.
    Vec {
        /// Features.
        n: usize,
    },
}

impl SampleShape {
    /// Elements per sample.
    pub fn numel(&self) -> usize {
        match *self {
            SampleShape::Map { h, w, c } => h * w * c,
            SampleShape::Vec { n } => n,
        }
    }
}

impl Batch {
    /// Zero-filled batch.
    pub fn zeros(b: usize, shape: SampleShape) -> Self {
        Self {
            data: vec![0.0; b * shape.numel()],
            b,
            shape,
        }
    }

    /// Wraps existing data.
    pub fn new(data: Vec<f32>, b: usize, shape: SampleShape) -> Self {
        assert_eq!(data.len(), b * shape.numel(), "batch size mismatch");
        Self { data, b, shape }
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.shape.numel()
    }

    /// Immutable view of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        let n = self.sample_len();
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable view of sample `i`.
    pub fn sample_mut(&mut self, i: usize) -> &mut [f32] {
        let n = self.sample_len();
        &mut self.data[i * n..(i + 1) * n]
    }

    /// Reinterprets a map batch as flat vectors (the flatten layer; NHWC
    /// order is preserved, matching the engine's flatten).
    pub fn flattened(mut self) -> Batch {
        let n = self.sample_len();
        self.shape = SampleShape::Vec { n };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_views() {
        let mut b = Batch::zeros(3, SampleShape::Vec { n: 4 });
        b.sample_mut(1)[2] = 5.0;
        assert_eq!(b.sample(1), &[0.0, 0.0, 5.0, 0.0]);
        assert_eq!(b.sample(0), &[0.0; 4]);
    }

    #[test]
    fn flatten_keeps_data() {
        let b = Batch::new(
            (0..2 * 2 * 2 * 3).map(|i| i as f32).collect(),
            2,
            SampleShape::Map { h: 2, w: 2, c: 3 },
        );
        let f = b.clone().flattened();
        assert_eq!(f.shape, SampleShape::Vec { n: 12 });
        assert_eq!(f.data, b.data);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_checked() {
        let _ = Batch::new(vec![0.0; 5], 2, SampleShape::Vec { n: 3 });
    }
}
