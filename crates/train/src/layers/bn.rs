//! Batch normalization over the channel/feature dimension.
//!
//! Works on both map batches (per-channel, NHWC) and vector batches
//! (per-feature). Training uses batch statistics and maintains running
//! statistics for inference; γ is re-clamped positive after each step so
//! the pool/sign reordering that maps this model onto the BitFlow engine
//! stays exact (see `bitflow-train` crate docs and `export`).

use super::batch::{Batch, SampleShape};

/// Batch-norm layer with learnable γ/β and running statistics.
pub struct BatchNorm {
    /// Scale (kept positive).
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Running mean (inference).
    pub running_mean: Vec<f32>,
    /// Running variance (inference).
    pub running_var: Vec<f32>,
    /// Feature width (channels for maps).
    pub c: usize,
    /// EMA momentum for running stats.
    pub ema: f32,
    eps: f32,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    // Forward caches.
    cache_xhat: Vec<f32>,
    cache_std_inv: Vec<f32>,
    cache_b: usize,
    cache_shape: Option<SampleShape>,
}

impl BatchNorm {
    /// New identity-initialized batch norm over `c` features.
    pub fn new(c: usize) -> Self {
        Self {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            c,
            ema: 0.1,
            eps: 1e-5,
            grad_gamma: vec![0.0; c],
            grad_beta: vec![0.0; c],
            cache_xhat: Vec::new(),
            cache_std_inv: Vec::new(),
            cache_b: 0,
            cache_shape: None,
        }
    }

    /// The epsilon used in normalization (needed by the export fold).
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Same layer with a non-default normalization ε (must be positive).
    /// The export fold carries this value into the engine, so models
    /// trained with a coarser ε stay bit-exact after export.
    pub fn with_eps(mut self, eps: f32) -> Self {
        assert!(eps > 0.0, "bn epsilon must be positive");
        self.eps = eps;
        self
    }

    fn feature_of(&self, shape: SampleShape, idx_in_sample: usize) -> usize {
        match shape {
            SampleShape::Map { c, .. } => idx_in_sample % c,
            SampleShape::Vec { .. } => idx_in_sample,
        }
    }

    /// Forward pass. `train = true` uses batch statistics and updates the
    /// running ones; `train = false` normalizes with the running stats
    /// (what the export fold uses).
    pub fn forward(&mut self, x: &Batch, train: bool) -> Batch {
        let shape = x.shape;
        match shape {
            SampleShape::Map { c, .. } => assert_eq!(c, self.c, "bn channels"),
            SampleShape::Vec { n } => assert_eq!(n, self.c, "bn features"),
        }
        let sample_len = x.sample_len();
        let per_feature = x.b * sample_len / self.c;
        let (mean, var) = if train {
            let mut mean = vec![0.0f32; self.c];
            let mut var = vec![0.0f32; self.c];
            for s in 0..x.b {
                for (i, &v) in x.sample(s).iter().enumerate() {
                    mean[self.feature_of(shape, i)] += v;
                }
            }
            for m in &mut mean {
                *m /= per_feature as f32;
            }
            for s in 0..x.b {
                for (i, &v) in x.sample(s).iter().enumerate() {
                    let f = self.feature_of(shape, i);
                    var[f] += (v - mean[f]).powi(2);
                }
            }
            for v in &mut var {
                *v /= per_feature as f32;
            }
            for f in 0..self.c {
                self.running_mean[f] = (1.0 - self.ema) * self.running_mean[f] + self.ema * mean[f];
                self.running_var[f] = (1.0 - self.ema) * self.running_var[f] + self.ema * var[f];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = Batch::zeros(x.b, shape);
        let mut xhat = vec![0.0f32; x.data.len()];
        for s in 0..x.b {
            let xs = x.sample(s);
            let ys = out.sample_mut(s);
            for i in 0..sample_len {
                let f = self.feature_of(shape, i);
                let xh = (xs[i] - mean[f]) * std_inv[f];
                xhat[s * sample_len + i] = xh;
                ys[i] = self.gamma[f] * xh + self.beta[f];
            }
        }
        if train {
            self.cache_xhat = xhat;
            self.cache_std_inv = std_inv;
            self.cache_b = x.b;
            self.cache_shape = Some(shape);
        }
        out
    }

    /// Backward pass (training statistics).
    pub fn backward(&mut self, grad_out: &Batch) -> Batch {
        let shape = self.cache_shape.expect("backward before forward(train)");
        assert_eq!(grad_out.shape, shape);
        assert_eq!(grad_out.b, self.cache_b);
        let sample_len = grad_out.sample_len();
        let per_feature = (self.cache_b * sample_len / self.c) as f32;

        // Accumulate dγ, dβ and the two reduction terms of the BN backward.
        let mut sum_gy = vec![0.0f32; self.c];
        let mut sum_gy_xhat = vec![0.0f32; self.c];
        for s in 0..self.cache_b {
            let gys = grad_out.sample(s);
            for (i, &gy) in gys.iter().enumerate().take(sample_len) {
                let f = self.feature_of(shape, i);
                let xh = self.cache_xhat[s * sample_len + i];
                sum_gy[f] += gy;
                sum_gy_xhat[f] += gy * xh;
            }
        }
        for f in 0..self.c {
            self.grad_beta[f] += sum_gy[f];
            self.grad_gamma[f] += sum_gy_xhat[f];
        }

        let mut grad_in = Batch::zeros(self.cache_b, shape);
        for s in 0..self.cache_b {
            let gys = grad_out.sample(s);
            let gxs = grad_in.sample_mut(s);
            for i in 0..sample_len {
                let f = self.feature_of(shape, i);
                let xh = self.cache_xhat[s * sample_len + i];
                // Standard BN backward:
                // dx = γ·σ⁻¹/N · (N·gy − Σgy − x̂·Σ(gy·x̂))
                gxs[i] = self.gamma[f] * self.cache_std_inv[f] / per_feature
                    * (per_feature * gys[i] - sum_gy[f] - xh * sum_gy_xhat[f]);
            }
        }
        grad_in
    }

    /// SGD step; γ is clamped to stay strictly positive (export-exactness
    /// requirement, see module docs).
    pub fn step(&mut self, lr: f32, _momentum: f32) {
        let scale = 1.0 / self.cache_b.max(1) as f32;
        for f in 0..self.c {
            self.gamma[f] -= lr * self.grad_gamma[f] * scale;
            self.beta[f] -= lr * self.grad_beta[f] * scale;
            self.gamma[f] = self.gamma[f].max(1e-3);
            self.grad_gamma[f] = 0.0;
            self.grad_beta[f] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(1);
        let x = Batch::new(vec![1.0, 2.0, 3.0, 4.0], 4, SampleShape::Vec { n: 1 });
        let y = bn.forward(&x, true);
        let mean: f32 = y.data.iter().sum::<f32>() / 4.0;
        let var: f32 = y.data.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn per_channel_on_maps() {
        let mut bn = BatchNorm::new(2);
        // 1 sample, 2x1 map, 2 channels: ch0 = [0, 10], ch1 = [5, 5].
        let x = Batch::new(
            vec![0.0, 5.0, 10.0, 5.0],
            1,
            SampleShape::Map { h: 2, w: 1, c: 2 },
        );
        let y = bn.forward(&x, true);
        // ch0 normalizes to ±1; ch1 is constant → 0.
        assert!((y.data[0] + 1.0).abs() < 1e-2);
        assert!((y.data[2] - 1.0).abs() < 1e-2);
        assert!(y.data[1].abs() < 1e-3 && y.data[3].abs() < 1e-3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        // Drive running stats toward mean 10 var 4 with many train passes.
        let x = Batch::new(vec![8.0, 12.0], 2, SampleShape::Vec { n: 1 });
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&Batch::new(vec![10.0], 1, SampleShape::Vec { n: 1 }), false);
        assert!(
            y.data[0].abs() < 0.05,
            "mean input should map near 0, got {}",
            y.data[0]
        );
    }

    #[test]
    fn backward_zero_mean_gradients() {
        // For L = Σ y, dx must be ~0 (BN output is mean-invariant under
        // shifts: gradient of the mean direction cancels).
        let mut bn = BatchNorm::new(1);
        let x = Batch::new(vec![1.0, 2.0, 3.0, 6.0], 4, SampleShape::Vec { n: 1 });
        let _ = bn.forward(&x, true);
        let g = Batch::new(vec![1.0; 4], 4, SampleShape::Vec { n: 1 });
        let gi = bn.backward(&g);
        for v in &gi.data {
            assert!(v.abs() < 1e-4, "grad {v}");
        }
    }

    #[test]
    fn gamma_stays_positive() {
        let mut bn = BatchNorm::new(1);
        let x = Batch::new(vec![-1.0, 1.0], 2, SampleShape::Vec { n: 1 });
        let _ = bn.forward(&x, true);
        // A huge gradient trying to push gamma negative.
        let g = Batch::new(vec![-100.0, 100.0], 2, SampleShape::Vec { n: 1 });
        let _ = bn.backward(&g);
        bn.step(100.0, 0.0);
        assert!(bn.gamma[0] > 0.0);
    }

    #[test]
    fn finite_difference_input_grad() {
        let mut bn = BatchNorm::new(1);
        let data = vec![0.3f32, -0.7, 1.1, 0.2];
        let x = Batch::new(data.clone(), 4, SampleShape::Vec { n: 1 });
        let _ = bn.forward(&x, true);
        // L = Σ w_i·y_i with fixed w to break symmetry.
        let wvec = [1.0f32, -2.0, 0.5, 3.0];
        let g = Batch::new(wvec.to_vec(), 4, SampleShape::Vec { n: 1 });
        let gi = bn.backward(&g);
        let eps = 1e-3f32;
        let loss = |bn: &mut BatchNorm, d: &[f32]| -> f32 {
            let xb = Batch::new(d.to_vec(), 4, SampleShape::Vec { n: 1 });
            let y = bn.forward(&xb, true);
            y.data.iter().zip(&wvec).map(|(a, b)| a * b).sum()
        };
        for idx in 0..4 {
            let mut dp = data.clone();
            dp[idx] += eps;
            let mut dm = data.clone();
            dm[idx] -= eps;
            let fd = (loss(&mut bn, &dp) - loss(&mut bn, &dm)) / (2.0 * eps);
            assert!(
                (gi.data[idx] - fd).abs() < 2e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                gi.data[idx]
            );
        }
    }
}
