//! 3×3 convolution layer (pad 1, stride 1), float or binary (STE).
//!
//! Padding semantics follow the engine: float mode pads with 0, binary mode
//! pads with −1 (the all-zero pressed word — see `bitflow-ops`' binary
//! module docs), so a trained binary conv transfers to PressedConv exactly.

use super::batch::{Batch, SampleShape};
use super::{sign, ste_gate, Mode};
use rand::Rng;

/// 3×3, stride-1, pad-1 convolution: C input channels, K filters.
/// Weights in (K, kh, kw, C) order — the engine's order.
pub struct Conv3x3 {
    /// Shadow weights.
    pub w: Vec<f32>,
    /// Bias (float mode only).
    pub bias: Vec<f32>,
    /// Input channels.
    pub c: usize,
    /// Filters.
    pub k: usize,
    /// Precision mode.
    pub mode: Mode,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    vel_w: Vec<f32>,
    vel_b: Vec<f32>,
    cache_x: Vec<f32>,
    cache_b: usize,
    cache_hw: (usize, usize),
}

impl Conv3x3 {
    /// Glorot-style initialization.
    pub fn new(c: usize, k: usize, mode: Mode, rng: &mut impl Rng) -> Self {
        let fan = (9 * c + 9 * k) as f32;
        let bound = (6.0 / fan).sqrt();
        Self {
            w: (0..k * 9 * c)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            bias: vec![0.0; k],
            c,
            k,
            mode,
            grad_w: vec![0.0; k * 9 * c],
            grad_b: vec![0.0; k],
            vel_w: vec![0.0; k * 9 * c],
            vel_b: vec![0.0; k],
            cache_x: Vec::new(),
            cache_b: 0,
            cache_hw: (0, 0),
        }
    }

    #[inline]
    fn widx(&self, kk: usize, i: usize, j: usize, cc: usize) -> usize {
        ((kk * 3 + i) * 3 + j) * self.c + cc
    }

    /// The padding value outside the image.
    #[inline]
    fn pad_value(&self) -> f32 {
        match self.mode {
            Mode::Float => 0.0,
            Mode::Binary => -1.0,
        }
    }

    /// Effective multiplier of a cached input value (id or sign).
    #[inline]
    fn act(&self, x: f32) -> f32 {
        match self.mode {
            Mode::Float => x,
            Mode::Binary => sign(x),
        }
    }

    /// Effective weight (id or sign).
    #[inline]
    fn eff_w(&self, v: f32) -> f32 {
        match self.mode {
            Mode::Float => v,
            Mode::Binary => sign(v),
        }
    }

    /// Forward pass over an NHWC map batch; output keeps h×w (pad 1).
    pub fn forward(&mut self, x: &Batch) -> Batch {
        let (h, w, c) = match x.shape {
            SampleShape::Map { h, w, c } => (h, w, c),
            _ => panic!("conv needs a map input"),
        };
        assert_eq!(c, self.c, "conv input channels");
        self.cache_x = x.data.clone();
        self.cache_b = x.b;
        self.cache_hw = (h, w);
        let mut out = Batch::zeros(x.b, SampleShape::Map { h, w, c: self.k });
        let pad_v = self.pad_value();
        for s in 0..x.b {
            let xs = x.sample(s);
            let ys = out.sample_mut(s);
            for oy in 0..h {
                for ox in 0..w {
                    for kk in 0..self.k {
                        let mut acc = if self.mode == Mode::Float {
                            self.bias[kk]
                        } else {
                            0.0
                        };
                        for i in 0..3 {
                            for j in 0..3 {
                                let y = oy as isize + i as isize - 1;
                                let xcol = ox as isize + j as isize - 1;
                                let inside =
                                    y >= 0 && y < h as isize && xcol >= 0 && xcol < w as isize;
                                for cc in 0..c {
                                    let xv = if inside {
                                        self.act(xs[((y as usize) * w + xcol as usize) * c + cc])
                                    } else {
                                        // pad: float 0 or binary −1 (already
                                        // "activated" values).
                                        pad_v
                                    };
                                    acc += xv * self.eff_w(self.w[self.widx(kk, i, j, cc)]);
                                }
                            }
                        }
                        ys[(oy * w + ox) * self.k + kk] = acc;
                    }
                }
            }
        }
        out
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_out: &Batch) -> Batch {
        let (h, w) = self.cache_hw;
        let c = self.c;
        assert_eq!(grad_out.shape, SampleShape::Map { h, w, c: self.k });
        assert_eq!(grad_out.b, self.cache_b);
        let mut grad_in = Batch::zeros(self.cache_b, SampleShape::Map { h, w, c });
        for s in 0..self.cache_b {
            let xs = &self.cache_x[s * h * w * c..(s + 1) * h * w * c];
            let gys = grad_out.sample(s);
            let gxs = grad_in.sample_mut(s);
            for oy in 0..h {
                for ox in 0..w {
                    for kk in 0..self.k {
                        let gy = gys[(oy * w + ox) * self.k + kk];
                        if gy == 0.0 {
                            continue;
                        }
                        if self.mode == Mode::Float {
                            self.grad_b[kk] += gy;
                        }
                        for i in 0..3 {
                            for j in 0..3 {
                                let y = oy as isize + i as isize - 1;
                                let xcol = ox as isize + j as isize - 1;
                                if y < 0 || y >= h as isize || xcol < 0 || xcol >= w as isize {
                                    // Pad positions: constant input, no
                                    // input grad; weight grad still flows
                                    // (the pad value multiplies the weight).
                                    let pad_v = self.pad_value();
                                    for cc in 0..c {
                                        let wi = self.widx(kk, i, j, cc);
                                        let gate = match self.mode {
                                            Mode::Float => 1.0,
                                            Mode::Binary => ste_gate(self.w[wi]),
                                        };
                                        self.grad_w[wi] += pad_v * gy * gate;
                                    }
                                    continue;
                                }
                                let base = ((y as usize) * w + xcol as usize) * c;
                                for cc in 0..c {
                                    let xv = xs[base + cc];
                                    let wi = self.widx(kk, i, j, cc);
                                    let wv = self.w[wi];
                                    match self.mode {
                                        Mode::Float => {
                                            self.grad_w[wi] += xv * gy;
                                            gxs[base + cc] += wv * gy;
                                        }
                                        Mode::Binary => {
                                            self.grad_w[wi] += sign(xv) * gy * ste_gate(wv);
                                            gxs[base + cc] += sign(wv) * gy * ste_gate(xv);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// SGD-with-momentum step; binary mode clips shadow weights.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        let scale = 1.0 / self.cache_b.max(1) as f32;
        for i in 0..self.w.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i] * scale;
            self.w[i] += self.vel_w[i];
            if self.mode == Mode::Binary {
                self.w[i] = self.w[i].clamp(-1.0, 1.0);
            }
            self.grad_w[i] = 0.0;
        }
        if self.mode == Mode::Float {
            for kk in 0..self.k {
                self.vel_b[kk] = momentum * self.vel_b[kk] - lr * self.grad_b[kk] * scale;
                self.bias[kk] += self.vel_b[kk];
                self.grad_b[kk] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn float_conv_matches_ops_reference() {
        use bitflow_ops::float::conv_direct;
        use bitflow_ops::ConvParams;
        use bitflow_tensor::{FilterShape, Layout, Shape, Tensor};
        let mut rng = StdRng::seed_from_u64(210);
        let (h, w, c, k) = (5usize, 4usize, 3usize, 2usize);
        let mut layer = Conv3x3::new(c, k, Mode::Float, &mut rng);
        let data: Vec<f32> = (0..h * w * c)
            .map(|i| ((i % 11) as f32 - 5.0) / 5.0)
            .collect();
        let x = Batch::new(data.clone(), 1, SampleShape::Map { h, w, c });
        let y = layer.forward(&x);
        let t = Tensor::from_vec(data, Shape::hwc(h, w, c), Layout::Nhwc);
        let want = conv_direct(
            &t,
            &layer.w,
            FilterShape::new(k, 3, 3, c),
            ConvParams::VGG_CONV,
        );
        for (a, b) in y.data.iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn binary_conv_matches_pressed_conv() {
        use bitflow_ops::binary::pressed_conv;
        use bitflow_ops::SimdLevel;
        use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
        let mut rng = StdRng::seed_from_u64(211);
        let (h, w, c, k) = (4usize, 4usize, 8usize, 3usize);
        let mut layer = Conv3x3::new(c, k, Mode::Binary, &mut rng);
        let data: Vec<f32> = (0..h * w * c)
            .map(|_| if rng.gen::<bool>() { 0.7 } else { -0.7 })
            .collect();
        let x = Batch::new(data.clone(), 1, SampleShape::Map { h, w, c });
        let y = layer.forward(&x);
        let t = Tensor::from_vec(data, Shape::hwc(h, w, c), Layout::Nhwc);
        let pressed = BitTensor::from_tensor_padded(&t, 1);
        let bank = BitFilterBank::from_floats(&layer.w, FilterShape::new(k, 3, 3, c));
        let want = pressed_conv(SimdLevel::Scalar, &pressed, &bank, 1);
        for (a, b) in y.data.iter().zip(want.data()) {
            assert_eq!(*a, *b, "trained-layer forward must equal engine conv");
        }
    }

    #[test]
    fn float_weight_grad_finite_difference() {
        let mut rng = StdRng::seed_from_u64(212);
        let (h, w, c, k) = (3usize, 3usize, 2usize, 2usize);
        let mut layer = Conv3x3::new(c, k, Mode::Float, &mut rng);
        let data: Vec<f32> = (0..h * w * c)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0)
            .collect();
        let x = Batch::new(data, 1, SampleShape::Map { h, w, c });
        let _ = layer.forward(&x);
        let ones = Batch::new(vec![1.0; h * w * k], 1, SampleShape::Map { h, w, c: k });
        let _ = layer.backward(&ones);
        let analytic = layer.grad_w.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 7, layer.w.len() - 1] {
            let orig = layer.w[idx];
            layer.w[idx] = orig + eps;
            let yp: f32 = layer.forward(&x).data.iter().sum();
            layer.w[idx] = orig - eps;
            let ym: f32 = layer.forward(&x).data.iter().sum();
            layer.w[idx] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic[idx] - fd).abs() < 1e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn float_input_grad_finite_difference() {
        let mut rng = StdRng::seed_from_u64(213);
        let (h, w, c, k) = (3usize, 3usize, 2usize, 1usize);
        let mut layer = Conv3x3::new(c, k, Mode::Float, &mut rng);
        let data: Vec<f32> = (0..h * w * c).map(|i| (i as f32).sin()).collect();
        let x = Batch::new(data.clone(), 1, SampleShape::Map { h, w, c });
        let _ = layer.forward(&x);
        let ones = Batch::new(vec![1.0; h * w * k], 1, SampleShape::Map { h, w, c: k });
        let ginput = layer.backward(&ones);
        let eps = 1e-2f32;
        for idx in [0usize, 5, 17] {
            let mut dp = data.clone();
            dp[idx] += eps;
            let yp: f32 = layer
                .forward(&Batch::new(dp, 1, SampleShape::Map { h, w, c }))
                .data
                .iter()
                .sum();
            let mut dm = data.clone();
            dm[idx] -= eps;
            let ym: f32 = layer
                .forward(&Batch::new(dm, 1, SampleShape::Map { h, w, c }))
                .data
                .iter()
                .sum();
            let fd = (yp - ym) / (2.0 * eps);
            assert!(
                (ginput.data[idx] - fd).abs() < 1e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                ginput.data[idx]
            );
        }
    }
}
