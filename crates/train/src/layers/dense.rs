//! Dense (fully-connected) layer, float or binary (STE).

use super::batch::{Batch, SampleShape};
use super::{sign, ste_gate, Mode};
use rand::Rng;

/// A dense layer `y = act(x)·eff(W)` with N inputs and K outputs.
///
/// * `Mode::Float`: `act = id`, `eff(W) = W` (plus bias).
/// * `Mode::Binary`: `act = sign`, `eff(W) = sign(W)`, no bias (the
///   following batch-norm supplies the affine freedom); gradients flow
///   through both signs with the clipped-identity STE, and shadow weights
///   are clipped to [−1, 1] after each step (BinaryConnect).
pub struct Dense {
    /// Shadow weights, N×K row-major.
    pub w: Vec<f32>,
    /// Bias (float mode only).
    pub bias: Vec<f32>,
    /// Input width.
    pub n: usize,
    /// Output width.
    pub k: usize,
    /// Precision mode.
    pub mode: Mode,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    vel_w: Vec<f32>,
    vel_b: Vec<f32>,
    cache_x: Vec<f32>,
    cache_b: usize,
}

impl Dense {
    /// Glorot-uniform initialization.
    pub fn new(n: usize, k: usize, mode: Mode, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (n + k) as f32).sqrt();
        Self {
            w: (0..n * k).map(|_| rng.gen_range(-bound..bound)).collect(),
            bias: vec![0.0; k],
            n,
            k,
            mode,
            grad_w: vec![0.0; n * k],
            grad_b: vec![0.0; k],
            vel_w: vec![0.0; n * k],
            vel_b: vec![0.0; k],
            cache_x: Vec::new(),
            cache_b: 0,
        }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Batch) -> Batch {
        assert_eq!(x.sample_len(), self.n, "dense input width");
        self.cache_x = x.data.clone();
        self.cache_b = x.b;
        let mut out = Batch::zeros(x.b, SampleShape::Vec { n: self.k });
        for s in 0..x.b {
            let xs = x.sample(s);
            let ys = out.sample_mut(s);
            match self.mode {
                Mode::Float => {
                    for (kk, y) in ys.iter_mut().enumerate() {
                        let mut acc = self.bias[kk];
                        for (i, &xv) in xs.iter().enumerate().take(self.n) {
                            acc += xv * self.w[i * self.k + kk];
                        }
                        *y = acc;
                    }
                }
                Mode::Binary => {
                    for (kk, y) in ys.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for (i, &xv) in xs.iter().enumerate().take(self.n) {
                            acc += sign(xv) * sign(self.w[i * self.k + kk]);
                        }
                        *y = acc;
                    }
                }
            }
        }
        out
    }

    /// Backward pass: accumulates weight/bias grads, returns input grads.
    pub fn backward(&mut self, grad_out: &Batch) -> Batch {
        assert_eq!(grad_out.sample_len(), self.k);
        assert_eq!(grad_out.b, self.cache_b, "backward batch mismatch");
        let mut grad_in = Batch::zeros(self.cache_b, SampleShape::Vec { n: self.n });
        for s in 0..self.cache_b {
            let xs = &self.cache_x[s * self.n..(s + 1) * self.n];
            let gys = grad_out.sample(s);
            let gxs = grad_in.sample_mut(s);
            match self.mode {
                Mode::Float => {
                    for i in 0..self.n {
                        let mut acc = 0.0f32;
                        for (kk, &gy) in gys.iter().enumerate() {
                            acc += gy * self.w[i * self.k + kk];
                            self.grad_w[i * self.k + kk] += xs[i] * gy;
                        }
                        gxs[i] = acc;
                    }
                    for (kk, &gy) in gys.iter().enumerate() {
                        self.grad_b[kk] += gy;
                    }
                }
                Mode::Binary => {
                    for i in 0..self.n {
                        let xb = sign(xs[i]);
                        let gate_x = ste_gate(xs[i]);
                        let mut acc = 0.0f32;
                        for (kk, &gy) in gys.iter().enumerate() {
                            let wv = self.w[i * self.k + kk];
                            acc += gy * sign(wv);
                            // dL/dw through sign(w): STE gate on |w|.
                            self.grad_w[i * self.k + kk] += xb * gy * ste_gate(wv);
                        }
                        gxs[i] = acc * gate_x;
                    }
                }
            }
        }
        grad_in
    }

    /// SGD-with-momentum step; binary mode clips shadow weights to [−1, 1].
    pub fn step(&mut self, lr: f32, momentum: f32) {
        let scale = 1.0 / self.cache_b.max(1) as f32;
        for i in 0..self.w.len() {
            self.vel_w[i] = momentum * self.vel_w[i] - lr * self.grad_w[i] * scale;
            self.w[i] += self.vel_w[i];
            if self.mode == Mode::Binary {
                self.w[i] = self.w[i].clamp(-1.0, 1.0);
            }
            self.grad_w[i] = 0.0;
        }
        if self.mode == Mode::Float {
            for kk in 0..self.k {
                self.vel_b[kk] = momentum * self.vel_b[kk] - lr * self.grad_b[kk] * scale;
                self.bias[kk] += self.vel_b[kk];
                self.grad_b[kk] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn fd_check(mode: Mode) {
        // Finite-difference check of dL/dw for L = sum(y) on one sample.
        let mut rng = StdRng::seed_from_u64(200);
        let (n, k) = (4usize, 3usize);
        let mut layer = Dense::new(n, k, mode, &mut rng);
        // Keep weights away from the sign discontinuity for binary FD.
        for w in &mut layer.w {
            if w.abs() < 0.2 {
                *w = 0.3 * w.signum().max(0.5);
            }
        }
        let x = Batch::new(vec![0.4, -0.6, 0.9, -0.2], 1, SampleShape::Vec { n });
        let _ = layer.forward(&x);
        let gout = Batch::new(vec![1.0; k], 1, SampleShape::Vec { n: k });
        let _ = layer.backward(&gout);
        let analytic = layer.grad_w.clone();
        let eps = 1e-2f32;
        for idx in [0usize, 5, 11] {
            let orig = layer.w[idx];
            layer.w[idx] = orig + eps;
            let yp: f32 = layer.forward(&x).data.iter().sum();
            layer.w[idx] = orig - eps;
            let ym: f32 = layer.forward(&x).data.iter().sum();
            layer.w[idx] = orig;
            let fd = (yp - ym) / (2.0 * eps);
            match mode {
                Mode::Float => {
                    assert!(
                        (analytic[idx] - fd).abs() < 1e-2,
                        "idx {idx}: {} vs {fd}",
                        analytic[idx]
                    );
                }
                Mode::Binary => {
                    // sign() is flat almost everywhere: FD sees 0 unless the
                    // perturbation crosses 0, while STE reports the
                    // surrogate. Just check the surrogate's sign convention.
                    assert!(analytic[idx].abs() <= 1.0 + 1e-6);
                }
            }
        }
    }

    #[test]
    fn float_gradients_match_finite_difference() {
        fd_check(Mode::Float);
    }

    #[test]
    fn binary_gradients_bounded() {
        fd_check(Mode::Binary);
    }

    #[test]
    fn binary_forward_is_integer_counts() {
        let mut rng = StdRng::seed_from_u64(201);
        let mut layer = Dense::new(6, 2, Mode::Binary, &mut rng);
        let x = Batch::new(
            vec![0.5, -0.5, 0.1, -0.1, 0.9, -0.9],
            1,
            SampleShape::Vec { n: 6 },
        );
        let y = layer.forward(&x);
        for v in &y.data {
            assert_eq!(v.fract(), 0.0, "binary dense output must be integral");
            assert!(v.abs() <= 6.0);
            // Parity: N=6 even → even dot products.
            assert_eq!((*v as i32).rem_euclid(2), 0);
        }
    }

    #[test]
    fn step_clips_binary_weights() {
        let mut rng = StdRng::seed_from_u64(202);
        let mut layer = Dense::new(2, 2, Mode::Binary, &mut rng);
        let x = Batch::new(vec![1.0, 1.0], 1, SampleShape::Vec { n: 2 });
        let _ = layer.forward(&x);
        let g = Batch::new(vec![100.0, -100.0], 1, SampleShape::Vec { n: 2 });
        let _ = layer.backward(&g);
        layer.step(10.0, 0.0);
        assert!(layer.w.iter().all(|w| (-1.0..=1.0).contains(w)));
    }

    #[test]
    fn float_layer_learns_identity() {
        // Tiny regression: fit y = x0 with a 1-unit dense layer.
        let mut rng = StdRng::seed_from_u64(203);
        let mut layer = Dense::new(1, 1, Mode::Float, &mut rng);
        for _ in 0..200 {
            let xv = rng.gen_range(-1.0f32..1.0);
            let x = Batch::new(vec![xv], 1, SampleShape::Vec { n: 1 });
            let y = layer.forward(&x);
            let err = y.data[0] - xv; // d(0.5 err^2)/dy = err
            let g = Batch::new(vec![err], 1, SampleShape::Vec { n: 1 });
            let _ = layer.backward(&g);
            layer.step(0.1, 0.0);
        }
        assert!((layer.w[0] - 1.0).abs() < 0.05, "w = {}", layer.w[0]);
        assert!(layer.bias[0].abs() < 0.05);
    }
}
