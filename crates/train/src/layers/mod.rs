//! Trainable layers with manual backpropagation.
//!
//! A deliberately small layer zoo — exactly what the Table V experiment
//! needs: dense and 3×3 convolution in float and binary (STE) variants,
//! max-pooling, batch normalization, and ReLU. Each layer caches what its
//! backward pass needs; the optimizer is a per-layer SGD step (see
//! [`crate::optim`]).

pub mod batch;
pub mod bn;
pub mod conv;
pub mod dense;
pub mod pool;

pub use batch::Batch;
pub use bn::BatchNorm;
pub use conv::Conv3x3;
pub use dense::Dense;
pub use pool::MaxPool2x2;

/// Straight-through estimator gate: gradient of `sign` approximated by
/// `1{|x| <= 1}` (BinaryNet's clipped identity).
#[inline]
pub fn ste_gate(x: f32) -> f32 {
    if x.abs() <= 1.0 {
        1.0
    } else {
        0.0
    }
}

/// Sign with the engine's convention (`sign(0) = +1`).
#[inline]
pub fn sign(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Precision mode of a parametric layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Plain float layer.
    Float,
    /// Binarized weights & input activations (STE training).
    Binary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ste_gate_window() {
        assert_eq!(ste_gate(0.0), 1.0);
        assert_eq!(ste_gate(1.0), 1.0);
        assert_eq!(ste_gate(-1.0), 1.0);
        assert_eq!(ste_gate(1.0001), 0.0);
        assert_eq!(ste_gate(-7.0), 0.0);
    }

    #[test]
    fn sign_convention() {
        assert_eq!(sign(0.0), 1.0);
        assert_eq!(sign(-0.0), 1.0);
        assert_eq!(sign(-1e-9), -1.0);
    }
}
