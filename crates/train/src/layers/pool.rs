//! 2×2 stride-2 max-pooling with argmax gradient routing.

use super::batch::{Batch, SampleShape};

/// Max-pool 2×2 stride 2 over NHWC map batches.
#[derive(Default)]
pub struct MaxPool2x2 {
    argmax: Vec<usize>,
    in_shape: Option<(usize, usize, usize, usize)>, // (b, h, w, c)
}

impl MaxPool2x2 {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass; caches per-output argmax indices for backward.
    pub fn forward(&mut self, x: &Batch) -> Batch {
        let (h, w, c) = match x.shape {
            SampleShape::Map { h, w, c } => (h, w, c),
            _ => panic!("pool needs a map input"),
        };
        let (oh, ow) = (h / 2, w / 2);
        self.in_shape = Some((x.b, h, w, c));
        self.argmax = vec![0; x.b * oh * ow * c];
        let mut out = Batch::zeros(x.b, SampleShape::Map { h: oh, w: ow, c });
        for s in 0..x.b {
            let xs = x.sample(s);
            let ys = out.sample_mut(s);
            for oy in 0..oh {
                for ox in 0..ow {
                    for cc in 0..c {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for i in 0..2 {
                            for j in 0..2 {
                                let idx = ((2 * oy + i) * w + 2 * ox + j) * c + cc;
                                if xs[idx] > best {
                                    best = xs[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        ys[(oy * ow + ox) * c + cc] = best;
                        self.argmax[((s * oh + oy) * ow + ox) * c + cc] = best_idx;
                    }
                }
            }
        }
        out
    }

    /// Backward: routes each output gradient to its argmax input.
    pub fn backward(&mut self, grad_out: &Batch) -> Batch {
        let (b, h, w, c) = self.in_shape.expect("backward before forward");
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(grad_out.shape, SampleShape::Map { h: oh, w: ow, c });
        let mut grad_in = Batch::zeros(b, SampleShape::Map { h, w, c });
        for s in 0..b {
            let gys = grad_out.sample(s);
            let gxs = grad_in.sample_mut(s);
            for o in 0..oh * ow * c {
                gxs[self.argmax[s * oh * ow * c + o]] += gys[o];
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_max() {
        let x = Batch::new(
            vec![1.0, 5.0, 2.0, 3.0], // 2x2x1
            1,
            SampleShape::Map { h: 2, w: 2, c: 1 },
        );
        let mut pool = MaxPool2x2::new();
        let y = pool.forward(&x);
        assert_eq!(y.data, vec![5.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let x = Batch::new(
            vec![1.0, 5.0, 2.0, 3.0],
            1,
            SampleShape::Map { h: 2, w: 2, c: 1 },
        );
        let mut pool = MaxPool2x2::new();
        let _ = pool.forward(&x);
        let g = Batch::new(vec![7.0], 1, SampleShape::Map { h: 1, w: 1, c: 1 });
        let gi = pool.backward(&g);
        assert_eq!(gi.data, vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn channels_pool_independently() {
        // 2x2x2: channel 0 max at (0,0), channel 1 max at (1,1).
        let x = Batch::new(
            vec![9.0, 0.0, 1.0, 1.0, 1.0, 2.0, 1.0, 8.0],
            1,
            SampleShape::Map { h: 2, w: 2, c: 2 },
        );
        let mut pool = MaxPool2x2::new();
        let y = pool.forward(&x);
        assert_eq!(y.data, vec![9.0, 8.0]);
    }

    #[test]
    fn batch_dimension_independent() {
        let x = Batch::new(
            vec![1.0, 2.0, 3.0, 4.0, /* s1 */ 40.0, 30.0, 20.0, 10.0],
            2,
            SampleShape::Map { h: 2, w: 2, c: 1 },
        );
        let mut pool = MaxPool2x2::new();
        let y = pool.forward(&x);
        assert_eq!(y.data, vec![4.0, 40.0]);
    }
}
