//! # bitflow-train
//!
//! Training substrate for BitFlow's accuracy experiment (paper Table V:
//! full-precision vs binarized VGG on MNIST/CIFAR-10/ImageNet).
//!
//! This reproduction has no GPU cluster and no licensed datasets, so the
//! experiment is scaled down *preserving its structure* (see DESIGN.md §3):
//! identical small architectures are trained twice — full-precision and
//! binarized with the straight-through estimator (STE) of
//! BinaryConnect/BinaryNet — on two synthetic datasets of different
//! difficulty ([`data::glyphs`] ≈ MNIST-easy, [`data::textures`] ≈
//! CIFAR-hard). The binarized model is architected so its inference pass
//! maps *exactly* onto the BitFlow engine (`bitflow-graph`): conv → folded
//! BN+sign → OR-pool, binary FC, all through the same PressedConv/bgemm
//! kernels — and the export test asserts the engine reproduces the trained
//! model's predictions bit-for-bit.
//!
//! ## Training rules (BinaryConnect/BinaryNet)
//!
//! * Forward: weights and activations pass through `sign` (+1 ↦ bit 1).
//! * Backward: `d sign(x)/dx ≈ 1{|x| ≤ 1}` (clipped identity — the STE).
//! * Float "shadow" weights receive the gradients and are clipped to
//!   [−1, 1] after each update.
//! * Batch-norm keeps activations centred so sign retains information.

pub mod data;
pub mod export;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;

pub use data::Dataset;
pub use model::{Model, TrainConfig, TrainReport};
