//! Softmax cross-entropy loss.

use crate::layers::batch::{Batch, SampleShape};

/// Computes mean softmax cross-entropy over a batch of logits and returns
/// `(loss, grad_logits)` where the gradient is `(softmax − one_hot)`
/// (already averaged semantics are handled by layer steps dividing by B).
pub fn softmax_cross_entropy(logits: &Batch, labels: &[usize]) -> (f32, Batch) {
    let k = match logits.shape {
        SampleShape::Vec { n } => n,
        _ => panic!("loss expects vector logits"),
    };
    assert_eq!(labels.len(), logits.b, "one label per sample");
    let mut grad = Batch::zeros(logits.b, logits.shape);
    let mut total = 0.0f32;
    for (s, &label) in labels.iter().enumerate() {
        let xs = logits.sample(s);
        assert!(label < k, "label out of range");
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let log_sum = sum.ln() + max;
        total += log_sum - xs[label];
        let gs = grad.sample_mut(s);
        for i in 0..k {
            gs[i] = exps[i] / sum - if i == label { 1.0 } else { 0.0 };
        }
    }
    (total / logits.b as f32, grad)
}

/// Argmax predictions from logits.
pub fn predictions(logits: &Batch) -> Vec<usize> {
    (0..logits.b)
        .map(|s| {
            logits
                .sample(s)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        })
        .collect()
}

/// Fraction of correct predictions.
pub fn accuracy(logits: &Batch, labels: &[usize]) -> f32 {
    let preds = predictions(logits);
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Batch::new(vec![10.0, -10.0, -10.0], 1, SampleShape::Vec { n: 3 });
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        assert!(grad.data.iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn uniform_logits_loss_is_ln_k() {
        let logits = Batch::new(vec![0.0; 4], 1, SampleShape::Vec { n: 4 });
        let (loss, _) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let logits = Batch::new(vec![1.0, 2.0, 3.0], 1, SampleShape::Vec { n: 3 });
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let sum: f32 = grad.data.iter().sum();
        assert!(sum.abs() < 1e-5, "gradient sums to zero");
        assert!(grad.data[1] < 0.0, "true-class grad negative");
        assert!(grad.data[0] > 0.0 && grad.data[2] > 0.0);
    }

    #[test]
    fn finite_difference_gradient() {
        let base = vec![0.5f32, -0.2, 1.3];
        let logits = Batch::new(base.clone(), 1, SampleShape::Vec { n: 3 });
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut p = base.clone();
            p[i] += eps;
            let (lp, _) = softmax_cross_entropy(&Batch::new(p, 1, SampleShape::Vec { n: 3 }), &[2]);
            let mut m = base.clone();
            m[i] -= eps;
            let (lm, _) = softmax_cross_entropy(&Batch::new(m, 1, SampleShape::Vec { n: 3 }), &[2]);
            let fd = (lp - lm) / (2.0 * eps);
            assert!((grad.data[i] - fd).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn accuracy_counts() {
        let logits = Batch::new(
            vec![1.0, 0.0, /* s1 */ 0.0, 1.0, /* s2 */ 1.0, 0.0],
            3,
            SampleShape::Vec { n: 2 },
        );
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(predictions(&logits), vec![0, 1, 0]);
    }

    #[test]
    fn numerically_stable() {
        let logits = Batch::new(vec![1000.0, -1000.0], 1, SampleShape::Vec { n: 2 });
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data.iter().all(|g| g.is_finite()));
    }
}
