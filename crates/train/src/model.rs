//! Sequential models, the training loop, and evaluation.
//!
//! Architectures are constructed *engine-compatible*: the binary variants
//! order their layers so that the trained forward pass equals the BitFlow
//! engine's `conv → folded-BN+sign → OR-pool → … → binary FC` pipeline
//! exactly (the sign∘BN∘max = max∘sign∘BN commutation holds because γ is
//! kept positive — see [`crate::layers::bn`]).

use crate::data::Dataset;
use crate::layers::batch::{Batch, SampleShape};
use crate::layers::{BatchNorm, Conv3x3, Dense, MaxPool2x2, Mode};
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::optim::Sgd;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One layer of a sequential model.
pub enum ModelLayer {
    /// 3×3 convolution (float or binary).
    Conv(Conv3x3),
    /// 2×2 max-pool.
    Pool(MaxPool2x2),
    /// Batch normalization.
    Bn(BatchNorm),
    /// ReLU (float models only).
    Relu(ReluLayer),
    /// Flatten map → vector.
    Flatten,
    /// Dense layer (float or binary).
    Dense(Dense),
}

/// ReLU with cached mask.
#[derive(Default)]
pub struct ReluLayer {
    mask: Vec<bool>,
}

impl ReluLayer {
    fn forward(&mut self, x: &Batch) -> Batch {
        self.mask = x.data.iter().map(|&v| v > 0.0).collect();
        let mut out = x.clone();
        for v in &mut out.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        out
    }
    fn backward(&self, g: &Batch) -> Batch {
        let mut out = g.clone();
        for (v, &m) in out.data.iter_mut().zip(&self.mask) {
            if !m {
                *v = 0.0;
            }
        }
        out
    }
}

/// A sequential model plus its precision mode.
pub struct Model {
    /// Layers in order.
    pub layers: Vec<ModelLayer>,
    /// Precision of the parametric layers.
    pub mode: Mode,
    /// Input geometry.
    pub input: SampleShape,
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer settings.
    pub sgd: Sgd,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 15,
            batch_size: 32,
            sgd: Sgd::default(),
            seed: 0,
        }
    }
}

/// Result of a training run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub loss_history: Vec<f32>,
    /// Training accuracy per epoch.
    pub acc_history: Vec<f32>,
}

impl Model {
    /// Builds a conv-net for `side`×`side`×`in_c` inputs:
    /// per block `Conv3x3(k) → Pool → BN` (+ ReLU in float mode), then
    /// flatten and a dense head to `classes` logits.
    pub fn conv_net(
        side: usize,
        in_c: usize,
        blocks: &[usize],
        classes: usize,
        mode: Mode,
        rng: &mut impl Rng,
    ) -> Self {
        let mut layers = Vec::new();
        let mut c = in_c;
        let mut s = side;
        for &k in blocks {
            layers.push(ModelLayer::Conv(Conv3x3::new(c, k, mode, rng)));
            layers.push(ModelLayer::Pool(MaxPool2x2::new()));
            layers.push(ModelLayer::Bn(BatchNorm::new(k)));
            if mode == Mode::Float {
                layers.push(ModelLayer::Relu(ReluLayer::default()));
            }
            c = k;
            s /= 2;
        }
        layers.push(ModelLayer::Flatten);
        layers.push(ModelLayer::Dense(Dense::new(s * s * c, classes, mode, rng)));
        Self {
            layers,
            mode,
            input: SampleShape::Map {
                h: side,
                w: side,
                c: in_c,
            },
        }
    }

    /// Builds an MLP: `Dense(h) → BN` (+ ReLU in float mode) per hidden
    /// layer, then a dense head.
    pub fn mlp(
        input_dim: usize,
        hidden: &[usize],
        classes: usize,
        mode: Mode,
        rng: &mut impl Rng,
    ) -> Self {
        let mut layers = Vec::new();
        let mut n = input_dim;
        for &h in hidden {
            layers.push(ModelLayer::Dense(Dense::new(n, h, mode, rng)));
            layers.push(ModelLayer::Bn(BatchNorm::new(h)));
            if mode == Mode::Float {
                layers.push(ModelLayer::Relu(ReluLayer::default()));
            }
            n = h;
        }
        layers.push(ModelLayer::Dense(Dense::new(n, classes, mode, rng)));
        Self {
            layers,
            mode,
            input: SampleShape::Vec { n: input_dim },
        }
    }

    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &Batch, train: bool) -> Batch {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = match layer {
                ModelLayer::Conv(l) => l.forward(&cur),
                ModelLayer::Pool(l) => l.forward(&cur),
                ModelLayer::Bn(l) => l.forward(&cur, train),
                ModelLayer::Relu(l) => l.forward(&cur),
                ModelLayer::Flatten => cur.flattened(),
                ModelLayer::Dense(l) => l.forward(&cur),
            };
        }
        cur
    }

    /// Backward pass (after a training-mode forward).
    pub fn backward(&mut self, grad: &Batch) {
        let pre_flatten = self.pre_flatten_shape();
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = match layer {
                ModelLayer::Conv(l) => l.backward(&cur),
                ModelLayer::Pool(l) => l.backward(&cur),
                ModelLayer::Bn(l) => l.backward(&cur),
                ModelLayer::Relu(l) => l.backward(&cur),
                ModelLayer::Flatten => {
                    // Un-flatten: restore the map shape of the producer.
                    let mut shaped = cur.clone();
                    shaped.shape = pre_flatten;
                    shaped
                }
                ModelLayer::Dense(l) => l.backward(&cur),
            };
        }
    }

    fn pre_flatten_shape(&self) -> SampleShape {
        // Walk the net to recompute the shape feeding Flatten.
        let mut shape = self.input;
        for layer in &self.layers {
            shape = match (layer, shape) {
                (ModelLayer::Conv(l), SampleShape::Map { h, w, .. }) => {
                    SampleShape::Map { h, w, c: l.k }
                }
                (ModelLayer::Pool(_), SampleShape::Map { h, w, c }) => SampleShape::Map {
                    h: h / 2,
                    w: w / 2,
                    c,
                },
                (ModelLayer::Flatten, s) => return s,
                (_, s) => s,
            };
        }
        shape
    }

    /// Optimizer step for every parametric layer.
    pub fn step(&mut self, lr: f32, momentum: f32) {
        for layer in &mut self.layers {
            match layer {
                ModelLayer::Conv(l) => l.step(lr, momentum),
                ModelLayer::Bn(l) => l.step(lr, momentum),
                ModelLayer::Dense(l) => l.step(lr, momentum),
                _ => {}
            }
        }
    }

    /// Trains on a dataset; returns per-epoch loss/accuracy.
    pub fn fit(&mut self, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.len();
        let img_len = data.image_len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut loss_history = Vec::with_capacity(cfg.epochs);
        let mut acc_history = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.sgd.lr_at(epoch);
            let mut total_loss = 0.0f32;
            let mut total_correct = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let b = chunk.len();
                let mut xdata = Vec::with_capacity(b * img_len);
                let mut labels = Vec::with_capacity(b);
                for &i in chunk {
                    xdata.extend_from_slice(data.image(i));
                    labels.push(data.labels[i]);
                }
                let x = Batch::new(xdata, b, self.input);
                let logits = self.forward(&x, true);
                let (loss, grad) = softmax_cross_entropy(&logits, &labels);
                total_loss += loss * b as f32;
                total_correct += (accuracy(&logits, &labels) * b as f32).round() as usize;
                self.backward(&grad);
                self.step(lr, cfg.sgd.momentum);
            }
            loss_history.push(total_loss / n as f32);
            acc_history.push(total_correct as f32 / n as f32);
        }
        TrainReport {
            loss_history,
            acc_history,
        }
    }

    /// Evaluation accuracy (inference mode: running BN statistics).
    pub fn evaluate(&mut self, data: &Dataset) -> f32 {
        let logits = self.predict(data);
        accuracy(&logits, &data.labels)
    }

    /// Full-dataset logits in inference mode.
    pub fn predict(&mut self, data: &Dataset) -> Batch {
        let x = Batch::new(data.images.clone(), data.len(), self.input);
        self.forward(&x, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{glyphs, SIDE};

    #[test]
    fn float_mlp_learns_glyphs() {
        let train = glyphs(400, 0.15, 1);
        let test = glyphs(100, 0.15, 2);
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = Model::mlp(SIDE * SIDE, &[64], 10, Mode::Float, &mut rng);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let report = model.fit(&train, &cfg);
        let acc = model.evaluate(&test);
        assert!(acc > 0.9, "float MLP accuracy {acc}");
        assert!(report.loss_history.last().unwrap() < &report.loss_history[0]);
    }

    #[test]
    fn binary_mlp_learns_glyphs() {
        let train = glyphs(400, 0.15, 3);
        let test = glyphs(100, 0.15, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Model::mlp(SIDE * SIDE, &[128], 10, Mode::Binary, &mut rng);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let _ = model.fit(&train, &cfg);
        let acc = model.evaluate(&test);
        assert!(acc > 0.7, "binary MLP accuracy {acc}");
    }

    #[test]
    fn binary_conv_net_trains_without_nan() {
        let train = glyphs(120, 0.1, 5);
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = Model::conv_net(SIDE, 1, &[8], 10, Mode::Binary, &mut rng);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let report = model.fit(&train, &cfg);
        assert!(report.loss_history.iter().all(|l| l.is_finite()));
        let logits = model.predict(&train);
        assert!(logits.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_improves_over_init() {
        let train = glyphs(200, 0.1, 6);
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = Model::mlp(SIDE * SIDE, &[32], 10, Mode::Float, &mut rng);
        let before = model.evaluate(&train);
        let _ = model.fit(
            &train,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        );
        let after = model.evaluate(&train);
        assert!(after > before + 0.2, "before {before}, after {after}");
    }
}
