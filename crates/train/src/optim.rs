//! Optimizer configuration.
//!
//! Parameter updates live in each layer's `step` (they own their velocity
//! state); this module holds the shared hyper-parameters and the learning
//! rate schedule.

use serde::{Deserialize, Serialize};

/// SGD-with-momentum hyper-parameters plus a step-decay schedule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Base learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Multiply the lr by this every `decay_every` epochs.
    pub decay: f32,
    /// Decay period in epochs (0 = never).
    pub decay_every: usize,
}

impl Default for Sgd {
    fn default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
            decay: 0.5,
            decay_every: 10,
        }
    }
}

impl Sgd {
    /// Learning rate at a given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        if self.decay_every == 0 {
            return self.lr;
        }
        self.lr * self.decay.powi((epoch / self.decay_every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_decays_stepwise() {
        let s = Sgd {
            lr: 1.0,
            momentum: 0.9,
            decay: 0.1,
            decay_every: 5,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(4), 1.0);
        assert!((s.lr_at(5) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(10) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn zero_period_is_constant() {
        let s = Sgd {
            decay_every: 0,
            ..Sgd::default()
        };
        assert_eq!(s.lr_at(100), s.lr);
    }
}
