//! Operator explorer: run one binary convolution at every SIMD tier and
//! watch the vector execution scheduler's decisions pay off — a live,
//! single-operator slice of the paper's Fig. 7.
//!
//! ```sh
//! cargo run --release --example operator_explorer            # conv4.1 geometry
//! cargo run --release --example operator_explorer -- 56 128 256  # H C K
//! ```

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn parse(args: &[String]) -> (usize, usize, usize) {
    match args {
        [h, c, k] => (
            h.parse().expect("H"),
            c.parse().expect("C"),
            k.parse().expect("K"),
        ),
        _ => (28, 256, 512), // conv4.1
    }
}

fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (h, c, k) = parse(&args);
    println!("binary 3x3 convolution: {h}x{h}x{c} -> {k} filters");
    println!("host SIMD: {}\n", features());

    let mut rng = StdRng::seed_from_u64(0);
    let input = Tensor::random(Shape::hwc(h, h, c), Layout::Nhwc, &mut rng);
    let fshape = FilterShape::new(k, 3, 3, c);
    let weights = Tensor::random(Shape::vec(fshape.numel()), Layout::Nhwc, &mut rng);
    let pressed = BitTensor::from_tensor_padded(&input, 1);
    let bank = BitFilterBank::from_floats(weights.data(), fshape);

    let scheduler = VectorScheduler::new();
    let pick = scheduler.select(c);
    println!(
        "scheduler decision for C={c}: {} ({} packed words/pixel{})",
        pick.level,
        pick.c_words,
        if pick.padded { ", channel-padded" } else { "" }
    );

    println!("\n{:<14} {:>12} {:>10}", "kernel", "time", "vs unvec");
    let mut scalar_time = 0.0;
    for level in [
        SimdLevel::Unvectorized,
        SimdLevel::Scalar,
        SimdLevel::Sse,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ] {
        let t = time_best(|| {
            std::hint::black_box(pressed_conv(level, &pressed, &bank, 1));
        });
        if level == SimdLevel::Unvectorized {
            scalar_time = t;
        }
        let marker = if level == pick.level {
            "  <- scheduled"
        } else {
            ""
        };
        println!(
            "{:<14} {:>10.2}ms {:>9.2}x{}",
            level.to_string(),
            t * 1e3,
            scalar_time / t,
            marker
        );
    }

    // Correctness cross-check against the float reference on ±1 data.
    let signed = input.sign();
    let pressed2 = BitTensor::from_tensor_padded(&signed, 1);
    let a = pressed_conv(SimdLevel::Scalar, &pressed2, &bank, 1);
    let b = pressed_conv(pick.level, &pressed2, &bank, 1);
    assert_eq!(a.max_abs_diff(&b), 0.0, "all kernels agree bit-exactly");
    println!("\nall kernel widths produce identical results ✔");
}
