//! Quickstart: build a small binarized CNN, compile it into the BitFlow
//! engine, and classify a random image.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. Hardware: what did the vector execution scheduler find?
    println!("SIMD features detected: {}", features());
    let scheduler = VectorScheduler::new();
    for c in [3usize, 64, 128, 256, 512] {
        let k = scheduler.select(c);
        println!("  channels {c:>3} -> kernel {}", k.level);
    }

    // 2. Define a network (conv -> pool -> fc chain, like a tiny VGG).
    let spec = small_cnn();
    println!("\nmodel: {} / input {}", spec.name, spec.input);

    // 3. Weights: random here; `bitflow-train` produces real ones.
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random(&spec, &mut rng);
    println!(
        "weights: {:.1} KiB float -> {:.1} KiB packed ({}x smaller)",
        weights.float_bytes() as f64 / 1024.0,
        weights.packed_bytes() as f64 / 1024.0,
        weights.float_bytes() / weights.packed_bytes().max(1)
    );

    // 4. Compile: binarize+pack weights, fold batch-norm into sign
    //    thresholds, pre-allocate every buffer (zero-cost padding baked in).
    let mut engine = Network::compile(&spec, &weights);
    println!(
        "engine compiled: {:.1} KiB activation memory pre-allocated",
        engine.activation_bytes() as f64 / 1024.0
    );

    // 5. Infer — allocation-free, xor+popcount all the way down.
    let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let logits = engine.infer(&image);
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!("\nlogits: {logits:?}");
    println!("predicted class: {} (score {})", best.0, best.1);

    // 6. Per-layer profile.
    let (_, times) = engine.infer_profiled(&image);
    println!("\nper-layer time:");
    for (name, t) in times {
        println!("  {name:<16} {:>8.1} µs", t.as_secs_f64() * 1e6);
    }
}
