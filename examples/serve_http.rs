//! Serve a binarized CNN over HTTP and poke it with curl.
//!
//! ```sh
//! cargo run --release --example serve_http            # serves ~20 s
//! cargo run --release --example serve_http -- 120     # serves 120 s
//! BITFLOW_NET_ADDR=127.0.0.1:8017 cargo run --release --example serve_http
//! ```
//!
//! The example writes a ready-made request body (a random input tensor in
//! the `bitflow_tensor::io` encoding) next to the printed curl commands,
//! serves for the requested number of seconds, then drains and prints the
//! final counters.

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    // One tenant, random weights; `bitflow-train` produces real ones.
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = Arc::new(CompiledModel::compile(&spec, &weights));
    let mut registry = ModelRegistry::new();
    registry.register("cnn", Arc::clone(&model), None);
    let server = Arc::new(Server::start_multi(registry, ServerConfig::from_env()));

    let net = NetServer::bind(Arc::clone(&server), NetConfig::from_env())?;
    let addr = net.local_addr();

    // A ready-made request body, so the curl below works as typed.
    let image = Tensor::random(spec.input, Layout::Nhwc, &mut StdRng::seed_from_u64(7));
    let body = bitflow::tensor::io::encode_tensor(&image);
    let body_path = std::env::temp_dir().join("bitflow_image.tensor");
    std::fs::write(&body_path, &body)?;

    println!("serving {} on http://{addr} for {secs} s", spec.name);
    println!("\ntry:");
    println!(
        "  curl -sS http://{addr}/v1/infer/cnn \\\n       \
         -H 'x-bitflow-deadline-ms: 50' \\\n       \
         --data-binary @{} -o /tmp/logits.f32",
        body_path.display()
    );
    println!("  curl -i  http://{addr}/healthz");
    println!("  curl -s  http://{addr}/metrics | grep bitflow_net");

    std::thread::sleep(Duration::from_secs(secs));

    let drained = net.shutdown();
    println!("\nnet drained cleanly: {drained}");
    let client = server.client("cnn").expect("registered above");
    let snap = client.metrics();
    println!(
        "served: submitted={} completed={} rejected_queue_full={}",
        snap.submitted, snap.completed, snap.rejected_queue_full
    );
    Ok(())
}
