//! The accuracy experiment in miniature (paper Table V): train the same
//! small conv-net in full precision and binarized (straight-through
//! estimator), evaluate both, and run the binarized model through the
//! actual BitFlow engine to show training → inference transfer is exact.
//!
//! ```sh
//! cargo run --release --example train_accuracy
//! ```

use bitflow::prelude::*;
use bitflow_train::data::{glyphs, SIDE};
use bitflow_train::export::export;
use bitflow_train::layers::Mode;
use bitflow_train::model::{Model, TrainConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let train = glyphs(1000, 0.2, 1);
    let test = glyphs(300, 0.2, 2);
    println!(
        "dataset: glyphs (MNIST analog), {} train / {} test, {}x{} px",
        train.len(),
        test.len(),
        SIDE,
        SIDE
    );
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 32,
        ..TrainConfig::default()
    };

    println!("\n[1/3] training full-precision conv-net…");
    let mut rng = StdRng::seed_from_u64(100);
    let mut float_model = Model::conv_net(SIDE, 1, &[16], 10, Mode::Float, &mut rng);
    let report = float_model.fit(&train, &cfg);
    println!(
        "  loss {:.3} -> {:.3}; test accuracy {:.1}%",
        report.loss_history[0],
        report.loss_history.last().unwrap(),
        float_model.evaluate(&test) * 100.0
    );

    println!("\n[2/3] training binarized conv-net (STE)…");
    let mut rng = StdRng::seed_from_u64(101);
    let mut bin_model = Model::conv_net(SIDE, 1, &[16], 10, Mode::Binary, &mut rng);
    let report = bin_model.fit(&train, &cfg);
    let bin_acc = bin_model.evaluate(&test);
    println!(
        "  loss {:.3} -> {:.3}; test accuracy {:.1}%",
        report.loss_history[0],
        report.loss_history.last().unwrap(),
        bin_acc * 100.0
    );

    println!("\n[3/3] exporting to the BitFlow engine and re-evaluating…");
    let (spec, weights) = export(&bin_model);
    let mut engine = Network::compile(&spec, &weights);
    let mut correct = 0;
    for i in 0..test.len() {
        let img = Tensor::from_vec(test.image(i).to_vec(), spec.input, Layout::Nhwc);
        let logits = engine.infer(&img);
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == test.labels[i] {
            correct += 1;
        }
    }
    let engine_acc = correct as f32 / test.len() as f32;
    println!(
        "  engine accuracy {:.1}% (trained model: {:.1}%) — must match exactly",
        engine_acc * 100.0,
        bin_acc * 100.0
    );
    assert_eq!(
        engine_acc, bin_acc,
        "engine must reproduce the trained model"
    );
    println!(
        "\nmodel size through the engine: {:.1} KiB float -> {:.1} KiB packed",
        engine.float_model_bytes() as f64 / 1024.0,
        engine.packed_model_bytes() as f64 / 1024.0
    );
}
