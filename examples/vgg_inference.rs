//! Binarized VGG-16 end-to-end inference — the paper's flagship scenario
//! (Fig. 11): latency-oriented (batch 1) classification on CPU, compared
//! against the calibrated GTX 1080 full-precision comparator.
//!
//! ```sh
//! cargo run --release --example vgg_inference          # VGG-16
//! cargo run --release --example vgg_inference -- vgg19 # VGG-19
//! ```

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "vgg16".into());
    let spec = match which.as_str() {
        "vgg19" => vgg19(),
        _ => vgg16(),
    };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "model: {} | input {} | host threads: {threads}",
        spec.name, spec.input
    );

    let mut rng = StdRng::seed_from_u64(7);
    println!("generating random weights (inference speed is weight-independent)…");
    let weights = NetworkWeights::random(&spec, &mut rng);
    println!(
        "model size: {:.1} MB float -> {:.1} MB packed",
        weights.float_bytes() as f64 / 1048576.0,
        weights.packed_bytes() as f64 / 1048576.0
    );

    let t0 = Instant::now();
    let mut engine = Network::compile(&spec, &weights);
    engine.parallel = threads > 1;
    println!(
        "compile (binarize+pack weights, fold BN, pre-allocate {:.1} MB activations): {:.0} ms",
        engine.activation_bytes() as f64 / 1048576.0,
        t0.elapsed().as_secs_f64() * 1e3
    );

    let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    // Warm-up, then a few timed runs.
    let _ = engine.infer(&image);
    let mut best = f64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        let _ = engine.infer(&image);
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!("\nBitFlow end-to-end: {:.2} ms (best of 5)", best * 1e3);

    let gpu = GpuModel::gtx1080().network_time(&spec).as_secs_f64();
    println!(
        "GTX 1080 full-precision (calibrated model): {:.2} ms",
        gpu * 1e3
    );
    println!(
        "paper reference (64-core Xeon Phi vs GTX 1080): {} ",
        if spec.name == "VGG16" {
            "11.82 ms vs 12.87 ms"
        } else {
            "13.68 ms vs 14.92 ms"
        }
    );

    let (_, times) = engine.infer_profiled(&image);
    println!("\nslowest layers:");
    let mut sorted: Vec<_> = times.iter().collect();
    sorted.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (name, t) in sorted.iter().take(8) {
        println!("  {name:<16} {:>9.2} ms", t.as_secs_f64() * 1e3);
    }
}
