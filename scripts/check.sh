#!/usr/bin/env bash
# One-command gate for PRs: formatting, lints, and the tier-1 tests.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --fast   # skip the release build (lints + debug tests)
#   scripts/check.sh --serve  # additionally run the serving-runtime gate:
#                             # strict clippy on bitflow-serve (warnings,
#                             # incl. unwrap/expect, denied), the chaos
#                             # soaks in quick mode (single-model and the
#                             # multi-model batched variant), and the
#                             # goodput micro-batching comparison (quick,
#                             # informational — appended to
#                             # results/history/goodput.jsonl)
#   scripts/check.sh --net    # additionally run the network front-end gate:
#                             # strict clippy on bitflow-net (warnings,
#                             # incl. unwrap/expect, denied), the hostile-
#                             # client + tracing suites, the trace-export
#                             # round-trip proptests, the TCP chaos soak in
#                             # quick mode with the flight recorder enabled,
#                             # and the load-to-failure sweep (quick,
#                             # twice: blesses a capacity baseline if
#                             # missing, then gates against it — appended
#                             # to results/history/load.jsonl)
#   scripts/check.sh --govern # additionally run the resource-governance
#                             # gate: strict clippy on bitflow-serve,
#                             # the governor/chaos fault-injection unit
#                             # tests, the model-header hostile-size fuzz,
#                             # and the exhaustion soak in quick mode
#                             # (mixed-priority tenants under injected
#                             # allocation failure, conservation incl.
#                             # rejected_memory, brownout + recovery)
#   scripts/check.sh --perf   # additionally run the bench-regression gate
#                             # (quick mode, twice: blesses a baseline if
#                             # missing, then gates against it) and print
#                             # the roofline summary. Off by default —
#                             # sandboxes without a PMU still work (the
#                             # gate degrades to wall-clock-only), but CI
#                             # machines with unstable clocks should opt in
#                             # deliberately.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
perf=0
serve=0
net=0
govern=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        --perf) perf=1 ;;
        --serve) serve=1 ;;
        --net) net=1 ;;
        --govern) govern=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p bitflow-telemetry -- -D warnings"
cargo clippy -p bitflow-telemetry --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1: root suite incl. differential/golden/no-alloc harnesses)"
cargo test -q

echo "==> fusion gate: fused-vs-unfused differential + BITFLOW_FUSE=0 golden replay"
cargo test -q --test fusion_differential
BITFLOW_FUSE=0 cargo test -q --test golden_snapshot --test fusion_differential

echo "==> BITFLOW_BENCH_QUICK=1 cargo test -q --workspace (all crates, bench in quick mode)"
BITFLOW_BENCH_QUICK=1 cargo test -q --workspace

if [[ $serve -eq 1 ]]; then
    echo "==> clippy -p bitflow-serve (unwrap/expect denied on the serving runtime)"
    # The crate roots carry #![warn(clippy::unwrap_used, clippy::expect_used)];
    # -D warnings promotes those to errors for this crate without leaking
    # the lint into vendored path dependencies.
    cargo clippy -p bitflow-serve --all-targets -- -D warnings
    echo "==> serving unit tests"
    cargo test -q -p bitflow-serve
    echo "==> chaos soaks (quick mode: single-model + multi-model batched)"
    BITFLOW_QUICK=1 cargo test -q --test serve_soak
    echo "==> goodput micro-batching comparison (quick, informational)"
    cargo run --release -q -p bitflow-bench --bin goodput -- --quick
fi

if [[ $net -eq 1 ]]; then
    echo "==> clippy -p bitflow-net (unwrap/expect denied on the front-end)"
    cargo clippy -p bitflow-net --all-targets -- -D warnings
    echo "==> net unit tests + hostile-client and tracing suites"
    cargo test -q -p bitflow-net
    echo "==> trace-export round-trip proptests (Chrome + Prometheus)"
    cargo test -q -p bitflow-telemetry --test chrome_props --test prometheus_props
    echo "==> TCP chaos soak (quick mode, flight recorder enabled)"
    BITFLOW_QUICK=1 BITFLOW_TRACE=1 cargo test -q --test net_soak
    echo "==> load-to-failure sweep (quick, twice: bless-if-needed then gate)"
    cargo run --release -q -p bitflow-bench --bin loadgen -- --quick
    cargo run --release -q -p bitflow-bench --bin loadgen -- --quick
fi

if [[ $govern -eq 1 ]]; then
    echo "==> clippy -p bitflow-serve (unwrap/expect denied on the serving runtime)"
    cargo clippy -p bitflow-serve --all-targets -- -D warnings
    echo "==> governor + chaos fault-injection unit tests"
    cargo test -q -p bitflow-serve govern
    cargo test -q -p bitflow-serve chaos
    echo "==> model-header hostile-size fuzz (near-usize::MAX declared counts)"
    cargo test -q -p bitflow-graph --test model_fuzz
    echo "==> exhaustion soak (quick mode: injected allocation failure, brownout, recovery)"
    BITFLOW_QUICK=1 cargo test -q --test exhaustion_soak
fi

if [[ $perf -eq 1 ]]; then
    echo "==> bench-regression gate (quick, twice: bless-if-needed then gate)"
    cargo run --release -q -p bitflow-bench --bin regress -- --quick
    cargo run --release -q -p bitflow-bench --bin regress -- --quick
    echo "==> roofline summary (quick telemetry bench)"
    cargo run --release -q -p bitflow-bench --bin telemetry -- --quick 2>/dev/null | grep '^roofline:'
fi

echo "OK"
