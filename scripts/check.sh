#!/usr/bin/env bash
# One-command gate for PRs: formatting, lints, and the tier-1 tests.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --fast   # skip the release build (lints + debug tests)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy -p bitflow-telemetry -- -D warnings"
cargo clippy -p bitflow-telemetry --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1: root suite incl. differential/golden/no-alloc harnesses)"
cargo test -q

echo "==> BITFLOW_BENCH_QUICK=1 cargo test -q --workspace (all crates, bench in quick mode)"
BITFLOW_BENCH_QUICK=1 cargo test -q --workspace

echo "OK"
