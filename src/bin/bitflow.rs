//! `bitflow` — command-line front end for the BitFlow engine.
//!
//! ```text
//! bitflow info                          host SIMD + scheduler mapping
//! bitflow models                        built-in model specs
//! bitflow plan <model>                  static memory plan for a model
//! bitflow bench <model> [threads]       end-to-end inference timing
//! bitflow train [epochs] [out.btfm]     train a small BNN, report accuracy,
//!                                       optionally save the model
//! bitflow classify <model.btfm>         load a saved model and evaluate it
//!                                       on a fresh synthetic test set
//! ```

use bitflow::prelude::*;
use bitflow_graph::model_io::{load_model, save_model};
use bitflow_graph::plan::MemoryPlan;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn model_by_name(name: &str) -> Option<NetworkSpec> {
    match name {
        "vgg16" => Some(vgg16()),
        "vgg19" => Some(vgg19()),
        "small" | "small_cnn" => Some(small_cnn()),
        "tiered" | "tiered_cnn" => Some(tiered_cnn()),
        _ => None,
    }
}

fn cmd_info() {
    println!("BitFlow host report");
    println!("  SIMD features : {}", features());
    println!(
        "  hardware threads: {}",
        std::thread::available_parallelism().map_or(0, |n| n.get())
    );
    let s = VectorScheduler::new();
    println!("  scheduler mapping (channel width -> kernel):");
    for c in [3usize, 32, 64, 128, 192, 256, 384, 512, 1024] {
        let k = s.select(c);
        println!(
            "    C={c:<5} -> {:<12} ({} words/pixel{})",
            k.level.to_string(),
            k.c_words,
            if k.padded { ", padded" } else { "" }
        );
    }
}

fn cmd_models() {
    for name in ["vgg16", "vgg19", "small_cnn", "tiered_cnn"] {
        let spec = model_by_name(name).unwrap();
        let convs = spec
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv { .. }))
            .count();
        let fcs = spec
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Fc { .. }))
            .count();
        println!(
            "{:<11} input {:<14} {:>2} conv, {:>2} fc, {:>2} layers total",
            name,
            spec.input.to_string(),
            convs,
            fcs,
            spec.layers.len()
        );
    }
}

fn cmd_plan(name: &str) {
    let Some(spec) = model_by_name(name) else {
        eprintln!("unknown model '{name}' (try: vgg16, vgg19, small_cnn, tiered_cnn)");
        std::process::exit(2);
    };
    let plan = MemoryPlan::for_binary(&spec);
    println!("memory plan for {} (binary engine):", spec.name);
    println!(
        "{:<12} {:<12} {:>14} {:>12}",
        "producer", "kind", "logical elems", "bytes"
    );
    for b in &plan.buffers {
        println!(
            "{:<12} {:<12} {:>14} {:>12}",
            b.producer,
            format!("{:?}", b.kind),
            b.logical_elems,
            b.bytes
        );
    }
    println!(
        "\ntotal pre-allocated: {:.2} MB (float-equivalent activations: {:.2} MB)",
        plan.total_bytes() as f64 / 1048576.0,
        plan.float_equivalent_bytes() as f64 / 1048576.0
    );
}

fn cmd_bench(name: &str, threads: usize) {
    let Some(spec) = model_by_name(name) else {
        eprintln!("unknown model '{name}'");
        std::process::exit(2);
    };
    println!("benchmarking {} at {} thread(s)…", spec.name, threads);
    let mut rng = StdRng::seed_from_u64(0);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let mut net = Network::compile(&spec, &weights);
    net.parallel = threads > 1;
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool");
    pool.install(|| {
        let _ = net.infer(&input); // warm-up
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            let _ = net.infer(&input);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!("end-to-end: {:.3} ms (best of 5)", best * 1e3);
    });
}

fn cmd_train(epochs: usize, save_path: Option<&str>) {
    use bitflow_train::data::{glyphs, SIDE};
    use bitflow_train::export::export;
    use bitflow_train::layers::Mode;
    use bitflow_train::model::{Model, TrainConfig};
    let train = glyphs(1000, 0.2, 1);
    let test = glyphs(300, 0.2, 2);
    println!("training binarized conv-net on glyphs for {epochs} epochs…");
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = Model::conv_net(SIDE, 1, &[16], 10, Mode::Binary, &mut rng);
    let report = model.fit(
        &train,
        &TrainConfig {
            epochs,
            batch_size: 32,
            ..TrainConfig::default()
        },
    );
    println!(
        "loss {:.3} -> {:.3}; test accuracy {:.1}%",
        report.loss_history.first().unwrap_or(&0.0),
        report.loss_history.last().unwrap_or(&0.0),
        model.evaluate(&test) * 100.0
    );
    if let Some(path) = save_path {
        let (spec, weights) = export(&model);
        save_model(path, &spec, &weights).expect("save model");
        println!("saved to {path}");
    }
}

fn cmd_classify(path: &str) {
    use bitflow_train::data::glyphs;
    let (spec, weights) = match load_model(path) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot load {path}: {e}");
            std::process::exit(2);
        }
    };
    println!("loaded {} ({} layers)", spec.name, spec.layers.len());
    let mut net = Network::compile(&spec, &weights);
    let test = glyphs(300, 0.2, 99);
    let mut correct = 0usize;
    for i in 0..test.len() {
        let img = Tensor::from_vec(test.image(i).to_vec(), spec.input, Layout::Nhwc);
        let logits = net.infer(&img);
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == test.labels[i] {
            correct += 1;
        }
    }
    println!(
        "accuracy on a fresh synthetic test set: {:.1}%",
        correct as f64 / test.len() as f64 * 100.0
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads_default = std::thread::available_parallelism().map_or(1, |n| n.get());
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(),
        Some("models") => cmd_models(),
        Some("plan") => cmd_plan(args.get(1).map(String::as_str).unwrap_or("vgg16")),
        Some("bench") => cmd_bench(
            args.get(1).map(String::as_str).unwrap_or("vgg16"),
            args.get(2)
                .and_then(|t| t.parse().ok())
                .unwrap_or(threads_default),
        ),
        Some("train") => cmd_train(
            args.get(1).and_then(|e| e.parse().ok()).unwrap_or(10),
            args.get(2).map(String::as_str),
        ),
        Some("classify") => match args.get(1) {
            Some(p) => cmd_classify(p),
            None => {
                eprintln!("usage: bitflow classify <model.btfm>");
                std::process::exit(2);
            }
        },
        _ => {
            eprintln!("usage: bitflow <info|models|plan|bench|train|classify> [...]");
            eprintln!("see `src/bin/bitflow.rs` docs for details");
            std::process::exit(2);
        }
    }
}
