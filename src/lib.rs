//! # bitflow
//!
//! Root package of the BitFlow workspace — a full Rust reproduction of
//! *"BitFlow: Exploiting Vector Parallelism for Binary Neural Networks on
//! CPU"* (Hu et al., IPDPS 2018). See README.md for the tour and
//! DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
//!
//! This crate simply re-exports the public API facade
//! ([`bitflow_core`]); the runnable examples live under `examples/` and
//! the cross-crate integration tests under `tests/`.

pub use bitflow_core::*;

/// Convenience re-export of the prelude at the root.
pub use bitflow_core::prelude;
