//! Concurrency integration tests: one `Arc<CompiledModel>` shared across
//! threads, each with its own `InferenceContext`, must reproduce the serial
//! single-context results bit-for-bit — the serving scenario the
//! model/context split exists for.

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

fn compiled_small_cnn(seed: u64) -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    (Arc::new(CompiledModel::compile(&spec, &weights)), inputs)
}

#[test]
fn arc_model_shared_across_threads_is_bit_identical() {
    let (model, inputs) = compiled_small_cnn(21);

    // Serial reference: every input through one context, in order.
    let mut ctx = model.new_context();
    let serial: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut ctx, img))
        .collect();

    // 4 threads, each owning a private context, each running the full
    // input set repeatedly against the shared model.
    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let model = Arc::clone(&model);
                let inputs = &inputs;
                s.spawn(move || {
                    let mut ctx = model.new_context();
                    let mut out = Vec::new();
                    for _ in 0..3 {
                        out.clear();
                        out.extend(inputs.iter().map(|img| model.infer(&mut ctx, img)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    for (t, got) in results.iter().enumerate() {
        assert_eq!(got, &serial, "thread {t} diverged from serial reference");
    }
}

#[test]
fn infer_batch_matches_serial_across_pool_sizes() {
    let (model, inputs) = compiled_small_cnn(22);
    let mut ctx = model.new_context();
    let serial: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut ctx, img))
        .collect();
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let batch = pool.install(|| model.infer_batch(&inputs));
        assert_eq!(batch, serial, "threads={threads}");
    }
}

#[test]
fn compat_wrapper_agrees_with_shared_model() {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(23);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

    let mut net = Network::compile(&spec, &weights);
    let want = net.infer(&input);

    let model = Arc::new(net.into_model());
    let mut ctx = model.new_context();
    assert_eq!(model.infer(&mut ctx, &input), want);
}
