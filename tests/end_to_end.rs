//! Cross-crate integration tests: the compiled engine against hand-chained
//! operators, parallel determinism, and a VGG-topology network end-to-end.

use bitflow::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// A VGG-shaped network small enough for CI: same layer pattern
/// (conv-conv-pool blocks, channel doubling, FC head) on a 32×32 input.
fn mini_vgg() -> NetworkSpec {
    NetworkSpec {
        name: "MiniVGG".into(),
        input: Shape::hwc(32, 32, 3),
        layers: vec![
            LayerSpec::Conv {
                name: "conv1.1".into(),
                k: 64,
                params: ConvParams::VGG_CONV,
            },
            LayerSpec::Conv {
                name: "conv1.2".into(),
                k: 64,
                params: ConvParams::VGG_CONV,
            },
            LayerSpec::Pool {
                name: "pool1".into(),
                params: ConvParams::VGG_POOL,
            },
            LayerSpec::Conv {
                name: "conv2.1".into(),
                k: 128,
                params: ConvParams::VGG_CONV,
            },
            LayerSpec::Pool {
                name: "pool2".into(),
                params: ConvParams::VGG_POOL,
            },
            LayerSpec::Fc {
                name: "fc1".into(),
                k: 256,
            },
            LayerSpec::Fc {
                name: "fc2".into(),
                k: 10,
            },
        ],
    }
}

#[test]
fn mini_vgg_compiles_and_infers() {
    let spec = mini_vgg();
    let mut rng = StdRng::seed_from_u64(1);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let mut net = Network::compile(&spec, &weights);
    let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let logits = net.infer(&img);
    assert_eq!(logits.len(), 10);
    assert!(logits.iter().all(|x| x.is_finite()));
    // FC counts have the same parity as their reduction width.
    for &l in &logits {
        assert_eq!(l.fract(), 0.0, "binary FC logits are integer counts");
    }
}

#[test]
fn serial_and_parallel_engines_bit_identical() {
    let spec = mini_vgg();
    let mut rng = StdRng::seed_from_u64(2);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let mut net = Network::compile(&spec, &weights);
    let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let serial = net.infer(&img);
    net.parallel = true;
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| net.infer(&img));
        assert_eq!(serial, got, "threads={threads}");
    }
}

#[test]
fn engine_matches_hand_chained_operators() {
    // Manually execute mini_vgg's first block with raw ops and compare the
    // intermediate bits against a truncated network.
    let mut rng = StdRng::seed_from_u64(3);
    let spec = NetworkSpec {
        name: "OneBlock".into(),
        input: Shape::hwc(16, 16, 64),
        layers: vec![
            LayerSpec::Conv {
                name: "c".into(),
                k: 128,
                params: ConvParams::VGG_CONV,
            },
            LayerSpec::Pool {
                name: "p".into(),
                params: ConvParams::VGG_POOL,
            },
            LayerSpec::Fc {
                name: "f".into(),
                k: 16,
            },
        ],
    };
    let weights = NetworkWeights::random(&spec, &mut rng);
    let mut net = Network::compile(&spec, &weights);
    let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let got = net.infer(&img);

    // Hand chain with identity BN (random() uses identity): threshold 0.
    let (w_conv, fshape) = match &weights.layers[0] {
        LayerWeights::Conv { w, fshape, .. } => (w.clone(), *fshape),
        _ => unreachable!(),
    };
    let bank = BitFilterBank::from_floats(&w_conv, fshape);
    let pressed = BitTensor::from_tensor_padded(&img, 1);
    let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
    let signed =
        bitflow::ops::binary::binarize_threshold_padded(&counts, &vec![0.0; 128], &[false; 128], 0);
    let pooled = binary_max_pool(SimdLevel::Avx512, &signed, 2, 2, 2);
    let (w_fc, n, k) = match &weights.layers[2] {
        LayerWeights::Fc { w, n, k, .. } => (w.clone(), *n, *k),
        _ => unreachable!(),
    };
    let fcw = BinaryFcWeights::pack(&w_fc, n, k);
    let want = binary_fc(SimdLevel::Avx512, pooled.to_tensor().data(), &fcw);
    assert_eq!(got, want);
}

#[test]
fn every_scheduler_tier_runs_in_one_network() {
    // tiered_cnn walks channels 3 → 64 → 128 → 256 → 512: padded-scalar,
    // scalar, SSE, AVX2, AVX-512 tiers all execute in one inference.
    let spec = tiered_cnn();
    let mut rng = StdRng::seed_from_u64(4);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let mut net = Network::compile(&spec, &weights);
    let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let a = net.infer(&img);
    let b = net.infer(&img);
    assert_eq!(a, b);
    assert_eq!(a.len(), 10);
}

#[test]
fn float_and_binary_engines_share_spec_and_weights() {
    let spec = mini_vgg();
    let mut rng = StdRng::seed_from_u64(5);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let mut bin = Network::compile(&spec, &weights);
    let float = FloatNetwork::compile(&spec, &weights);
    let img = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let lb = bin.infer(&img);
    let lf = float.infer(&img);
    assert_eq!(lb.len(), lf.len());
    assert!(lf.iter().all(|x| x.is_finite()));
}

#[test]
fn repeated_inference_is_stable_over_many_runs() {
    // Zero-cost padding depends on margins never being dirtied; hammer the
    // engine with alternating inputs and verify outputs keep matching
    // fresh single-use engines.
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(6);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let mut reused = Network::compile(&spec, &weights);
    let imgs: Vec<Tensor> = (0..6)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    for round in 0..3 {
        for (i, img) in imgs.iter().enumerate() {
            let got = reused.infer(img);
            let mut fresh = Network::compile(&spec, &weights);
            let want = fresh.infer(img);
            assert_eq!(got, want, "round {round}, image {i}");
        }
    }
}
