//! Property-based cross-crate equivalence tests: the binary kernels must
//! agree exactly with float references over the full input space, for all
//! SIMD levels, arbitrary shapes, and both padding conventions.

use bitflow::prelude::*;
use proptest::prelude::*;

fn sign(x: f32) -> f32 {
    if x >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Strategy: a ±1 tensor of the given size.
fn pm1_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(prop_oneof![Just(-1.0f32), Just(1.0f32)], len)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// PressedConv equals the float direct convolution (with −1 padding)
    /// for random geometry, channels across all scheduler tiers, and every
    /// SIMD level.
    #[test]
    fn pressed_conv_equals_float_reference(
        h in 3usize..8,
        w in 3usize..8,
        c_idx in 0usize..5,
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let c = [3usize, 32, 64, 96, 130][c_idx];
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n_in = h * w * c;
        let input_v: Vec<f32> = (0..n_in).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let fshape = FilterShape::new(k, 3, 3, c);
        let weights: Vec<f32> = (0..fshape.numel()).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let input = Tensor::from_vec(input_v, Shape::hwc(h, w, c), Layout::Nhwc);

        // Float reference with explicit −1 border.
        let padded = Tensor::from_fn(Shape::hwc(h + 2, w + 2, c), Layout::Nhwc, |_, y, x, cc| {
            if y == 0 || y == h + 1 || x == 0 || x == w + 1 { -1.0 } else { input.at(0, y - 1, x - 1, cc) }
        });
        let want = bitflow::ops::float::conv_direct(
            &padded, &weights, fshape, ConvParams::new(3, 3, 1, 0),
        );

        let pressed = BitTensor::from_tensor_padded(&input, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        for level in [SimdLevel::Scalar, SimdLevel::Sse, SimdLevel::Avx2, SimdLevel::Avx512] {
            let got = pressed_conv(level, &pressed, &bank, 1);
            prop_assert_eq!(got.max_abs_diff(&want), 0.0, "level {}", level);
        }
    }

    /// Binary FC equals the sign-matmul float reference for arbitrary
    /// (non-±1) float inputs — binarization happens inside.
    #[test]
    fn binary_fc_equals_sign_matmul(
        n in 1usize..300,
        k in 1usize..20,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let input: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let weights: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let packed = BinaryFcWeights::pack(&weights, n, k);
        let got = binary_fc(SimdLevel::Avx512, &input, &packed);
        for kk in 0..k {
            let want: f32 = (0..n).map(|i| sign(input[i]) * sign(weights[i * k + kk])).sum();
            prop_assert_eq!(got[kk], want);
        }
    }

    /// Binary max-pool equals float max-pool on ±1 data for any window
    /// geometry that fits.
    #[test]
    fn binary_pool_equals_float_pool(
        h in 2usize..9,
        w in 2usize..9,
        c_idx in 0usize..4,
        win in 1usize..3,
        data in pm1_vec(8 * 8 * 96), // upper-bound size, sliced below
    ) {
        let c = [1usize, 33, 64, 96][c_idx];
        let needed = h * w * c;
        prop_assume!(needed <= data.len());
        prop_assume!(win <= h && win <= w);
        let stride = win; // non-overlapping windows
        let t = Tensor::from_vec(data[..needed].to_vec(), Shape::hwc(h, w, c), Layout::Nhwc);
        let want = bitflow::ops::float::max_pool(&t, ConvParams::new(win, win, stride, 0));
        let pressed = BitTensor::from_tensor(&t);
        let got = binary_max_pool(SimdLevel::Avx512, &pressed, win, win, stride).to_tensor();
        prop_assert_eq!(got.max_abs_diff(&want), 0.0);
    }

    /// bgemm (via the facade's binary FC weights) matches sgemm over signed
    /// matrices: the gemm-level contract.
    #[test]
    fn bgemm_matches_sgemm_on_signs(
        m in 1usize..4,
        n in 1usize..150,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut got = vec![0.0f32; m * k];
        bitflow::gemm::bgemm_f32(SimdLevel::Avx2, &a, &b, &mut got, m, n, k);
        let sa: Vec<f32> = a.iter().copied().map(sign).collect();
        let sb: Vec<f32> = b.iter().copied().map(sign).collect();
        let mut want = vec![0.0f32; m * k];
        bitflow::gemm::sgemm_naive(&sa, &sb, &mut want, m, n, k);
        prop_assert_eq!(got, want);
    }

    /// Packing is involutive: pack → unpack → pack is the identity on the
    /// packed form (press-tail invariant holds throughout).
    #[test]
    fn pack_unpack_pack_identity(
        h in 1usize..5,
        w in 1usize..5,
        c in 1usize..130,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::from_fn(Shape::hwc(h, w, c), Layout::Nhwc, |_, _, _, _| {
            rng.gen_range(-1.0f32..1.0)
        });
        let packed = BitTensor::from_tensor(&t);
        prop_assert!(packed.tail_is_zero());
        let unpacked = packed.to_tensor();
        let repacked = BitTensor::from_tensor(&unpacked);
        prop_assert_eq!(packed.words(), repacked.words());
    }
}
