//! Exhaustion soak for the resource governor (`bitflow-serve`).
//!
//! Two tenants at different priorities share one server while
//! seed-deterministic chaos fails every Nth accounted memory reservation
//! — as if the allocator refused the bytes — and slow/stall chaos keeps
//! the admission queue pressured enough to drive the brownout state
//! machine. The assertions are the governance contract:
//!
//! * **No aborts, ever.** Every injected allocation failure surfaces as a
//!   typed outcome — a `MemoryPressure` rejection at `submit` or a
//!   `ResourceExhausted` request failure — never a process abort, and
//!   `worker_panics` stays at zero (a reservation failure is not a
//!   fault).
//! * **Counters conserve, per tenant, including the new column.** Each
//!   tenant's gauges reconcile exactly with caller-side tallies and obey
//!   `submitted == accepted + rejected_*` with `rejected_memory` in the
//!   sum, and `accepted == completed + failed + shed + missed +
//!   cancelled` after drain.
//! * **Leases balance.** After shutdown the only accounted bytes left per
//!   tenant are its pinned model weights: exactly one live lease, sized
//!   `float_model_bytes + packed_model_bytes`.
//! * **Successes stay bit-identical.** A request that completes under
//!   exhaustion chaos returns the same logits as serial inference.
//! * **Recovery is autonomous.** Once load stops and the queue drains,
//!   polling the degradation state (each poll re-evaluates the signals)
//!   walks the server back to `Normal` without any reset call.
//!
//! The ballast test drives the state machine deterministically: a forced
//! lease pins memory pressure into the brownout band, Low-priority
//! traffic is shed while High-priority traffic still completes, and
//! releasing the ballast recovers `Shed → Brownout → Normal` through the
//! calm-evaluation hysteresis.
//!
//! Sizing: `BITFLOW_QUICK=1` runs a few hundred requests (CI gate);
//! `BITFLOW_SOAK_REQUESTS=N` overrides; the default sits in between.

use bitflow::prelude::*;
use bitflow_graph::BitFlowError;
use bitflow_serve::{DegradationState, GovernorConfig, Priority, ResponseHandle};
use bitflow_telemetry::ServeGauges;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct inputs cycled over the request stream (request `i` sends
/// input `i % DISTINCT_INPUTS`, so each success has a precomputed oracle).
const DISTINCT_INPUTS: usize = 16;

/// Every Nth accounted reservation fails under chaos. Low enough that
/// even the quick gate sees dozens of injected failures.
const ALLOC_FAIL_NTH: u64 = 7;

fn soak_requests() -> usize {
    if let Ok(v) = std::env::var("BITFLOW_SOAK_REQUESTS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var_os("BITFLOW_QUICK").is_some_and(|v| v == "1") {
        300
    } else {
        1500
    }
}

fn compiled_small_cnn(seed: u64) -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs: Vec<Tensor> = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    (Arc::new(CompiledModel::compile(&spec, &weights)), inputs)
}

fn compiled_model_only(seed: u64) -> Arc<CompiledModel> {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    Arc::new(CompiledModel::compile(&spec, &weights))
}

/// Allocation-failure chaos only: no panics (so `worker_panics` must stay
/// zero) plus a slice of slow ops and pop-stalls to keep the queue deep
/// enough that the brownout signals actually move.
fn exhaustion_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        panic_ppm: 0,
        kill_ppm: 0,
        conn_kill_ppm: 0,
        read_stall_ppm: 0,
        trunc_write_ppm: 0,
        slow_ppm: 20_000,
        stall_ppm: 30_000,
        alloc_fail_nth: ALLOC_FAIL_NTH,
        ..ChaosConfig::with_seed(seed)
    }
}

fn wait_with_watchdog(
    handle: &ResponseHandle,
    timeout: Duration,
) -> Result<Vec<f32>, BitFlowError> {
    let start = Instant::now();
    loop {
        if let Some(result) = handle.try_wait() {
            return result;
        }
        assert!(
            start.elapsed() < timeout,
            "request {} did not resolve within {timeout:?}: serving runtime deadlocked",
            handle.id()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Polls the degradation state (each poll re-evaluates the governor's
/// signals) until it reaches `want` or the watchdog expires.
fn poll_until_state(server: &Server, want: DegradationState, timeout: Duration) {
    let start = Instant::now();
    loop {
        let state = server.degradation_state();
        if state == want {
            return;
        }
        assert!(
            start.elapsed() < timeout,
            "governor stuck in {state:?}, expected autonomous return to {want:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Per-request outcomes tallied caller-side, reconciled against gauges.
#[derive(Default)]
struct Tally {
    completed: u64,
    failed: u64,
    rejected: u64,
}

/// The weight bytes a tenant's model pins for the server's lifetime.
fn weight_bytes(model: &CompiledModel) -> u64 {
    (model.float_model_bytes() + model.packed_model_bytes()) as u64
}

#[test]
fn exhaustion_soak_conserves_every_request_and_recovers() {
    let n = soak_requests();
    let (model_hi, inputs) = compiled_small_cnn(42);
    let model_lo = compiled_model_only(7);

    let mut ctx_hi = model_hi.new_context();
    let mut ctx_lo = model_lo.new_context();
    let oracle_hi: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_hi.infer(&mut ctx_hi, i))
        .collect();
    let oracle_lo: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_lo.infer(&mut ctx_lo, i))
        .collect();

    let mut registry = ModelRegistry::new();
    registry.register_with_priority("hi", Arc::clone(&model_hi), None, Priority::High);
    registry.register_with_priority("lo", Arc::clone(&model_lo), None, Priority::Low);
    let server = Server::start_multi(
        registry,
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            shed_policy: ShedPolicy::DeadlineAware,
            max_batch: 8,
            coalesce_window: Duration::from_micros(50),
            breaker: BreakerConfig {
                fault_threshold: 64,
                cooldown: Duration::from_millis(10),
            },
            chaos: Some(exhaustion_chaos(0xE8A5)),
            govern: GovernorConfig {
                // Generous: steady state fits comfortably, so every
                // memory outcome in this soak is chaos-injected (the
                // budget-refusal path has the ballast test below).
                global_budget: Some(64 << 20),
                tenant_budget: Some(48 << 20),
            },
            ..ServerConfig::default()
        },
    );
    let gauges_lo = server.client("lo").expect("registered").entry().gauges();

    // (tenant index 0 = hi, 1 = lo) → caller-side tallies.
    let mut tallies = [Tally::default(), Tally::default()];
    let mut submitted = [0u64, 0u64];
    let mut pending: Vec<(usize, usize, ResponseHandle)> = Vec::with_capacity(n);
    let mut max_state_seen = DegradationState::Normal;
    for i in 0..n {
        // Unthrottled submission: the single-threaded submitter outruns
        // the batched pool, so the queue saturates and the brownout
        // signals actually move. Sampling the state (itself an
        // evaluation) every few requests records how far they moved.
        if i % 8 == 7 {
            let state = server.degradation_state();
            if state.as_u64() > max_state_seen.as_u64() {
                max_state_seen = state;
            }
        }
        let which = usize::from(i % 3 == 0); // hi, hi, lo, hi, hi, lo, ...
        let name = if which == 0 { "hi" } else { "lo" };
        let client = server.client(name).expect("registered");
        submitted[which] += 1;
        match client.submit(inputs[i % DISTINCT_INPUTS].clone()) {
            Ok(handle) => pending.push((which, i, handle)),
            Err(_reason) => tallies[which].rejected += 1,
        }
    }

    for (which, i, handle) in pending {
        let oracle = if which == 0 { &oracle_hi } else { &oracle_lo };
        let tally = &mut tallies[which];
        match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(logits) => {
                assert_eq!(
                    logits,
                    oracle[i % DISTINCT_INPUTS],
                    "request {i} (tenant {which}) completed under exhaustion chaos \
                     with logits differing from serial inference"
                );
                tally.completed += 1;
            }
            // An injected allocation failure (or a budget refusal) while
            // building the worker's inference context fails the one
            // request that needed it; the worker lives.
            Err(BitFlowError::ResourceExhausted { .. }) | Err(BitFlowError::Rejected(_)) => {
                tally.failed += 1;
            }
            Err(other) => panic!("request {i}: unexpected typed error {other}"),
        }
    }

    // Load has stopped and the queue is drained: polling the state must
    // walk the governor back to Normal on its own.
    poll_until_state(&server, DegradationState::Normal, Duration::from_secs(10));

    // `shutdown` snapshots the default entry ("hi") after workers join
    // but before the server value drops, so hi still holds its weight
    // lease; `snap_lo` is read after the drop, when every lease —
    // weights included — must have been returned.
    let snap_hi = server.shutdown(); // "hi" registered first: the default entry
    let snap_lo = gauges_lo.snapshot();

    for (which, snap) in [(0usize, &snap_hi), (1usize, &snap_lo)] {
        let tally = &tallies[which];
        let rejected = snap.rejected_queue_full
            + snap.rejected_shedding
            + snap.rejected_draining
            + snap.rejected_quota
            + snap.govern.rejected_memory;
        assert_eq!(snap.submitted, submitted[which], "tenant {which} submitted");
        assert_eq!(snap.completed, tally.completed, "tenant {which} completed");
        assert_eq!(snap.failed, tally.failed, "tenant {which} failed");
        assert_eq!(rejected, tally.rejected, "tenant {which} rejections");
        // The conservation law with the memory column included.
        assert_eq!(snap.submitted, snap.accepted + rejected, "tenant {which}");
        assert_eq!(
            snap.accepted,
            snap.completed
                + snap.failed
                + snap.shed_deadline
                + snap.deadline_missed
                + snap.cancelled,
            "tenant {which} admitted requests all resolved exactly once"
        );
        // Allocation failures are typed outcomes, not faults: nothing
        // panicked, nothing tripped the breaker.
        assert_eq!(snap.worker_panics, 0, "tenant {which} panicked");
        assert_eq!(snap.breaker_trips, 0, "tenant {which} tripped the breaker");
        assert!(snap.completed > 0, "tenant {which} starved");
    }
    assert_eq!(snap_hi.queue_depth, 0, "drain leaves the queue empty");

    // Lease balance. While the server value still lived (hi's snapshot):
    // workers joined (context leases dropped), queue drained (payload
    // leases dropped), so the one remaining charge was the pinned
    // weights. After the drop (lo's snapshot): everything, weights
    // included, was returned — no leak, no double release.
    assert_eq!(
        snap_hi.govern.mem_leases, 1,
        "hi: only the weight lease survives drain while the server lives"
    );
    assert_eq!(
        snap_hi.govern.mem_used_bytes,
        weight_bytes(&model_hi),
        "hi: accounted bytes after drain are exactly the weights"
    );
    assert_eq!(
        snap_lo.govern.mem_leases, 0,
        "lo: every lease returned once the server is gone"
    );
    assert_eq!(
        snap_lo.govern.mem_used_bytes, 0,
        "lo: accounted bytes return to zero once the server is gone"
    );

    // The chaos domain must actually have fired: injected reservation
    // failures surface as memory rejections (payload path) or request
    // failures (context path).
    let injected = snap_hi.govern.rejected_memory
        + snap_lo.govern.rejected_memory
        + snap_hi.failed
        + snap_lo.failed;
    assert!(injected > 0, "allocation-failure chaos never fired");

    if n >= 1000 {
        assert!(
            max_state_seen != DegradationState::Normal,
            "sustained overload never left Normal: the soak is not exercising brownout"
        );
        assert!(
            snap_lo.govern.rejected_memory > 0,
            "the Low-priority tenant was never shed under pressure"
        );
    }
}

/// Deterministic brownout walk: a forced ballast lease pins memory
/// pressure into each band, Low-priority traffic is shed while
/// High-priority traffic completes bit-identically, and releasing the
/// ballast recovers `Shed → Brownout → Normal` purely through polled
/// evaluations.
#[test]
fn ballast_drives_brownout_sheds_low_priority_and_recovers() {
    let (model_hi, inputs) = compiled_small_cnn(42);
    let model_lo = compiled_model_only(7);
    let mut oracle_ctx = model_hi.new_context();
    let oracle = model_hi.infer(&mut oracle_ctx, &inputs[0]);

    const BUDGET: u64 = 1_000_000_000;
    let mut registry = ModelRegistry::new();
    registry.register_with_priority("hi", Arc::clone(&model_hi), None, Priority::High);
    registry.register_with_priority("lo", Arc::clone(&model_lo), None, Priority::Low);
    let server = Server::start_multi(
        registry,
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            govern: GovernorConfig {
                global_budget: Some(BUDGET),
                tenant_budget: None,
            },
            ..ServerConfig::default()
        },
    );
    assert_eq!(server.degradation_state(), DegradationState::Normal);

    // 80% of budget: inside the brownout band, below the shed band.
    let ballast_gauges = Arc::new(ServeGauges::default());
    let account = server.governor().tenant("ballast", &ballast_gauges);
    let brownout_ballast = server.governor().reserve_forced(&account, BUDGET / 10 * 8);
    assert_eq!(server.degradation_state(), DegradationState::Brownout);

    let submit_lo = |expect: &str| {
        let r = server
            .client("lo")
            .expect("registered")
            .submit(inputs[0].clone());
        assert!(
            r.is_err(),
            "Low-priority submission must be shed in {expect}"
        );
    };
    let submit_hi_ok = |expect: &str| {
        let handle = server
            .client("hi")
            .expect("registered")
            .submit(inputs[0].clone())
            .unwrap_or_else(|r| panic!("High-priority rejected ({r}) in {expect}"));
        let logits = wait_with_watchdog(&handle, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("High-priority failed ({e}) in {expect}"));
        assert_eq!(logits, oracle, "logits diverged in {expect}");
    };
    submit_lo("Brownout");
    submit_hi_ok("Brownout");
    assert_eq!(
        server
            .client("hi")
            .expect("registered")
            .entry()
            .gauges()
            .snapshot()
            .govern
            .degradation_state,
        DegradationState::Brownout.as_u64(),
        "state gauge mirrors to every tenant"
    );

    // +15%: total 95% of budget, at the shed threshold. High priority
    // still floats above a full Shed.
    let shed_ballast = server.governor().reserve_forced(&account, BUDGET / 20 * 3);
    assert_eq!(server.degradation_state(), DegradationState::Shed);
    submit_lo("Shed");
    submit_hi_ok("Shed");

    // Release the pressure: hysteresis walks back one level per run of
    // calm evaluations, with no reset call.
    drop(brownout_ballast);
    drop(shed_ballast);
    poll_until_state(&server, DegradationState::Normal, Duration::from_secs(10));

    let snap_lo = server
        .client("lo")
        .expect("registered")
        .entry()
        .gauges()
        .snapshot();
    assert_eq!(
        snap_lo.govern.rejected_memory, 2,
        "both shed Low-priority submissions counted as memory rejections"
    );
    assert_eq!(
        snap_lo.submitted,
        snap_lo.accepted
            + snap_lo.rejected_queue_full
            + snap_lo.rejected_shedding
            + snap_lo.rejected_draining
            + snap_lo.rejected_quota
            + snap_lo.govern.rejected_memory,
        "Low tenant conserves with the memory column"
    );
    drop(server);
}
