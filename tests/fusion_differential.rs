//! Fusion differential harness: the fused Conv→BN→Sign integer-threshold
//! epilogue must be **bit-identical** to the unfused reference dataflow
//! (float count map → float threshold compare) on every input — including
//! the adversarial batch-norm corners where the two could plausibly split:
//!
//! * negative γ (comparison direction flips),
//! * γ ≈ 0 and γ = 0 (degenerate constant channels),
//! * non-default ε (PR 6's fix must reach the integer bound),
//! * β pushing the threshold outside the reachable popcount range
//!   (saturation to always-+1 / always-−1),
//! * exact integer ties (dot == threshold — where the old
//!   `(x >= t) ^ flip` semantics were wrong for flipped channels).
//!
//! Three tiers: operator-level proptests over every §III-B channel width,
//! whole-graph fused-vs-unfused logit equality, and plan introspection
//! pinning exactly which chains fused.

use bitflow::graph::plan::{PlanNode, PlanOptions};
use bitflow::graph::spec::{LayerSpec, NetworkSpec};
use bitflow::graph::weights::{BnParams, LayerWeights, NetworkWeights};
use bitflow::graph::CompiledModel;
use bitflow::ops::binary::{
    binarize_threshold_padded, pressed_conv, pressed_conv_sign_into, SignThresholds,
};
use bitflow::ops::{ConvParams, SimdLevel};
use bitflow::tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The §III-B channel widths: one per scheduler rule (3 pads, 32/64/128
/// hit the SSE/AVX2/AVX-512 single-word tiers, 160/256 the multi-word
/// paths).
const SECTION_3B_WIDTHS: [usize; 6] = [3, 32, 64, 128, 160, 256];

/// Draws adversarial BN statistics for `k` channels: mixed-sign γ with
/// mass near zero and exactly zero, β occasionally huge (threshold leaves
/// the reachable dot range), non-default ε half the time.
fn adversarial_bn(k: usize, rng: &mut StdRng) -> BnParams {
    let eps = if rng.gen::<bool>() { 1e-5 } else { 1e-1 };
    let gamma = (0..k)
        .map(|_| match rng.gen_range(0u32..8) {
            0 => 0.0,
            1 => rng.gen_range(-1e-4f32..1e-4),
            2..=4 => -rng.gen_range(0.05f32..2.0),
            _ => rng.gen_range(0.05f32..2.0),
        })
        .collect();
    let beta = (0..k)
        .map(|_| {
            if rng.gen_range(0u32..8) == 0 {
                rng.gen_range(-1e6f32..1e6)
            } else {
                rng.gen_range(-3.0f32..3.0)
            }
        })
        .collect();
    BnParams {
        gamma,
        beta,
        mean: (0..k).map(|_| rng.gen_range(-4.0f32..4.0)).collect(),
        var: (0..k).map(|_| rng.gen_range(0.05f32..3.0)).collect(),
        eps,
    }
}

fn pm1(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Operator level: the fused integer epilogue equals the unfused
    /// two-pass (float counts, then folded float threshold compare) for
    /// every §III-B channel width under adversarial BN.
    #[test]
    fn fused_epilogue_matches_unfused_reference(
        c_idx in 0usize..SECTION_3B_WIDTHS.len(),
        k in 1usize..48,
        h in 3usize..6,
        w in 3usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let c = SECTION_3B_WIDTHS[c_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let fshape = FilterShape::new(k, 3, 3, c);
        let input = Tensor::from_vec(pm1(&mut rng, h * w * c), Shape::hwc(h, w, c), Layout::Nhwc);
        let weights = pm1(&mut rng, fshape.numel());
        let bn = adversarial_bn(k, &mut rng);
        let fold = bn.fold();

        let pressed = BitTensor::from_tensor_padded(&input, 1);
        let bank = BitFilterBank::from_floats(&weights, fshape);

        // Unfused reference: float count map, then the folded float
        // threshold compare (the exact dataflow `BITFLOW_FUSE=0` runs).
        let counts = pressed_conv(SimdLevel::Avx512, &pressed, &bank, 1);
        let want = binarize_threshold_padded(&counts, &fold.thresholds, &fold.flip, 1);

        // Fused: integer popcount-domain compare inside the conv.
        let st = SignThresholds::from_fold(&fold, 3 * 3 * c);
        let mut got = BitTensor::zeros(h + 2, w + 2, k);
        pressed_conv_sign_into(SimdLevel::Avx512, &pressed, &bank, 1, &st, &mut got, 1);

        prop_assert_eq!(got.words(), want.words(), "fused != unfused (c={}, k={})", c, k);
        prop_assert!(got.tail_is_zero());
    }

    /// Whole graph: a fused compile and an unfused compile of the same
    /// spec + weights produce bit-identical logits, with adversarial BN on
    /// the conv layer.
    #[test]
    fn fused_and_unfused_plans_agree_on_logits(
        c_idx in 0usize..SECTION_3B_WIDTHS.len(),
        k_idx in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let c = SECTION_3B_WIDTHS[c_idx];
        let k = [32usize, 64, 128][k_idx];
        let spec = NetworkSpec {
            name: "fusion-diff".into(),
            input: Shape::hwc(6, 6, c),
            layers: vec![
                LayerSpec::Conv {
                    name: "conv1".into(),
                    k,
                    params: ConvParams::VGG_CONV,
                },
                LayerSpec::Pool {
                    name: "pool1".into(),
                    params: ConvParams::VGG_POOL,
                },
                LayerSpec::Fc { name: "fc1".into(), k: 10 },
            ],
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = NetworkWeights::random_with_bn(&spec, &mut rng);
        // Replace the conv's BN with adversarial statistics.
        if let LayerWeights::Conv { bn, .. } = &mut weights.layers[0] {
            *bn = adversarial_bn(k, &mut rng);
        }
        let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

        let fused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::default())
            .expect("fused compile");
        let unfused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::unfused())
            .expect("unfused compile");
        prop_assert_eq!(fused.fused_conv_names(), vec!["conv1"]);
        prop_assert!(unfused.fused_conv_names().is_empty());

        let a = fused
            .try_infer(&mut fused.new_context(), &image)
            .expect("fused infer");
        let b = unfused
            .try_infer(&mut unfused.new_context(), &image)
            .expect("unfused infer");
        prop_assert_eq!(&a, &b, "fused and unfused logits diverge (c={}, k={})", c, k);

        // The parallel fused kernel must also agree.
        let mut ctx = fused.new_context();
        ctx.parallel = true;
        let p = fused.try_infer(&mut ctx, &image).expect("parallel fused infer");
        prop_assert_eq!(&a, &p, "parallel fused kernel diverges");
    }
}

/// Deterministic tie regression: with γ < 0 the folded compare is
/// `x <= t`, equality included — an integer dot landing exactly on the
/// threshold must binarize to +1 (sign(BN(x)) = sign(0) = +1). The old
/// `(x >= t) ^ flip` encoding got this corner wrong.
#[test]
fn flipped_tie_lands_on_plus_one() {
    // 3×3×1 window (n = 9), all-+1 filter. Input row pattern chosen so the
    // center window has 6 ones / 3 minus-ones: dot = 3.
    let h = 3;
    let w = 3;
    let vals = vec![
        1.0, 1.0, 1.0, //
        1.0, 1.0, 1.0, //
        -1.0, -1.0, -1.0,
    ];
    let input = Tensor::from_vec(vals, Shape::hwc(h, w, 1), Layout::Nhwc);
    let fshape = FilterShape::new(1, 3, 3, 1);
    let bank = BitFilterBank::from_floats(&[1.0f32; 9], fshape);
    let pressed = BitTensor::from_tensor(&input);

    let counts = pressed_conv(SimdLevel::Scalar, &pressed, &bank, 1);
    assert_eq!(counts.at(0, 0, 0, 0), 3.0, "window dot is the tie value");

    // γ = −1, σ² = 1 − ε ⇒ s = −1, t = mean − β/s = 3 exactly.
    let bn = BnParams {
        gamma: vec![-1.0],
        beta: vec![0.0],
        mean: vec![3.0],
        var: vec![1.0 - bitflow::graph::weights::DEFAULT_BN_EPS],
        eps: bitflow::graph::weights::DEFAULT_BN_EPS,
    };
    let fold = bn.fold();
    assert_eq!(fold.thresholds, vec![3.0]);
    assert_eq!(fold.flip, vec![true]);

    // Explicit float reference: BN(3) = −1·(3−3)/1 + 0 = 0, sign(0) = +1.
    let st = SignThresholds::from_fold(&fold, 9);
    let mut fused = BitTensor::zeros(1, 1, 1);
    pressed_conv_sign_into(SimdLevel::Scalar, &pressed, &bank, 1, &st, &mut fused, 0);
    assert_eq!(fused.get(0, 0, 0), 1, "fused: tie must be +1");

    let unfused = binarize_threshold_padded(&counts, &fold.thresholds, &fold.flip, 0);
    assert_eq!(unfused.get(0, 0, 0), 1, "unfused: tie must be +1");
}

/// Plan introspection: the quickstart recipe fuses exactly its one conv.
#[test]
fn quickstart_plan_fuses_exactly_conv1() {
    let spec = bitflow::graph::models::small_cnn();
    let mut rng = StdRng::seed_from_u64(11);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::default())
        .expect("compile small_cnn");
    assert_eq!(model.fused_conv_names(), vec!["conv1"]);
    let nodes = model.plan().nodes();
    assert!(
        !nodes.iter().any(|n| matches!(n, PlanNode::BnSign { .. })),
        "no standalone BN+sign remains in the fused plan"
    );
    // The softmax tail stays a float FcOut — never a fusion candidate.
    assert!(matches!(nodes.last(), Some(PlanNode::FcOut { name }) if name == "fc1"));
}

/// Plan introspection: VGG-16 fuses all 13 convs; the FC tail is left
/// alone (fc6/fc7 sign via the integer epilogue *as FC ops*, fc8 emits
/// float logits).
#[test]
fn vgg16_plan_fuses_all_convs() {
    let spec = bitflow::graph::models::vgg16();
    let opts = PlanOptions::default();
    let plan = bitflow::graph::plan::ExecPlan::build(&spec, &opts);
    assert_eq!(plan.fused_convs().len(), 13);
    assert!(plan.unfused_convs().is_empty());
    assert!(
        !plan
            .nodes()
            .iter()
            .any(|n| matches!(n, PlanNode::BnSign { .. })),
        "no unfused BN+sign nodes in the default VGG-16 plan"
    );
    assert!(matches!(plan.nodes().last(), Some(PlanNode::FcOut { name }) if name == "fc8"));

    // A float-tapped conv is excluded from fusion — its float map has a
    // second consumer — while every other chain still fuses.
    let mut tapped = PlanOptions::default();
    tapped.float_taps.insert("conv3.2".into());
    let plan = bitflow::graph::plan::ExecPlan::build(&spec, &tapped);
    assert_eq!(plan.unfused_convs(), vec!["conv3.2"]);
    assert_eq!(plan.fused_convs().len(), 12);
}

/// A float-tapped compile still produces bit-identical logits — fusion is
/// a pure dataflow optimization, never a numerics change.
#[test]
fn float_tap_keeps_logits_bit_identical() {
    let spec = bitflow::graph::models::small_cnn();
    let mut rng = StdRng::seed_from_u64(12);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

    let fused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::default())
        .expect("fused compile");
    let mut tapped_opts = PlanOptions::default();
    tapped_opts.float_taps.insert("conv1".into());
    let tapped =
        CompiledModel::try_compile_with(&spec, &weights, &tapped_opts).expect("tapped compile");
    assert!(tapped.fused_conv_names().is_empty());

    let a = fused
        .try_infer(&mut fused.new_context(), &image)
        .expect("fused");
    let b = tapped
        .try_infer(&mut tapped.new_context(), &image)
        .expect("tapped");
    assert_eq!(a, b);
}

/// Telemetry honesty: on the Table IV workload (VGG-16) every fused conv
/// row must report strictly fewer bytes moved than the unfused
/// ConvFloat + BnSign pair it replaced — the roofline attribution sees
/// the float count map disappear.
#[test]
fn vgg16_fused_convs_move_strictly_fewer_bytes() {
    let spec = bitflow::graph::models::vgg16();
    let mut rng = StdRng::seed_from_u64(13);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let fused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::default())
        .expect("fused compile");
    let unfused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::unfused())
        .expect("unfused compile");

    let fused_rows = fused.op_descriptors();
    let unfused_rows = unfused.op_descriptors();
    let conv_names: Vec<String> = spec
        .layers
        .iter()
        .filter_map(|l| match l {
            LayerSpec::Conv { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(conv_names.len(), 13);

    for name in &conv_names {
        let f = fused_rows
            .iter()
            .find(|d| &d.name == name)
            .unwrap_or_else(|| panic!("fused row for {name}"));
        let u_conv = unfused_rows
            .iter()
            .find(|d| &d.name == name)
            .unwrap_or_else(|| panic!("unfused conv row for {name}"));
        let bnsign = format!("{name}:bnsign");
        let u_bn = unfused_rows
            .iter()
            .find(|d| d.name == bnsign)
            .unwrap_or_else(|| panic!("unfused bnsign row for {name}"));
        let fused_bytes = f.cost.bytes_read + f.cost.bytes_written;
        let unfused_bytes = u_conv.cost.bytes_read
            + u_conv.cost.bytes_written
            + u_bn.cost.bytes_read
            + u_bn.cost.bytes_written;
        assert!(
            fused_bytes < unfused_bytes,
            "{name}: fused moves {fused_bytes} B, unfused {unfused_bytes} B"
        );
        // The arithmetic is identical — only the data movement shrinks.
        assert_eq!(f.cost.bit_ops, u_conv.cost.bit_ops);
    }
}
