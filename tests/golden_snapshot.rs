//! Golden end-to-end snapshots: the serving path must reproduce checksummed
//! logits for the two example models, exactly.
//!
//! The recipes mirror `examples/quickstart.rs` (small CNN, seed 42) and
//! `examples/vgg_inference.rs` (VGG-16, seed 7): seed an `StdRng`, draw
//! random weights, then draw the input image from the *same* stream. Every
//! BitFlow operator computes exact integers over ±1 data, so the logits are
//! bit-stable across SIMD tiers and thread counts — any checksum change
//! means an intentional numerical change and must be blessed explicitly:
//!
//! ```sh
//! BITFLOW_BLESS=1 cargo test --test golden_snapshot
//! ```
//!
//! which rewrites the files under `tests/golden/`.

use bitflow_graph::models::{small_cnn, vgg16};
use bitflow_graph::spec::NetworkSpec;
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::{CompiledModel, PlanOptions};
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;

/// FNV-1a 64-bit over the little-endian bit patterns of the logits. FNV is
/// deliberate: dependency-free, stable, and any single flipped bit anywhere
/// in the vector changes the digest.
fn fnv1a64_logits(logits: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in logits {
        for b in x.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.fnv64"))
}

/// Runs the example recipe: seeded weights, then the image from the same rng.
fn run_recipe(spec: &NetworkSpec, seed: u64) -> Vec<f32> {
    run_recipe_with(spec, seed, &PlanOptions::from_env())
}

/// Same recipe under an explicit plan — lets the suite pin both the fused
/// (default) and unfused (`BITFLOW_FUSE=0`) dataflows to golden digests.
fn run_recipe_with(spec: &NetworkSpec, seed: u64, opts: &PlanOptions) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random(spec, &mut rng);
    let model = CompiledModel::try_compile_with(spec, &weights, opts).expect("golden compile");
    let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let mut ctx = model.new_context();
    model.try_infer(&mut ctx, &image).expect("golden inference")
}

fn check_golden(name: &str, logits: &[f32]) {
    let digest = format!("{:016x}", fnv1a64_logits(logits));
    let path = golden_path(name);
    if std::env::var_os("BITFLOW_BLESS").is_some() {
        std::fs::write(&path, format!("{digest}\n")).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BITFLOW_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        digest,
        want.trim(),
        "{name}: packed-logits checksum changed — if intentional, re-bless with BITFLOW_BLESS=1"
    );
}

#[test]
fn quickstart_logits_reproduce_exactly() {
    let spec = small_cnn();
    let logits = run_recipe(&spec, 42);
    assert_eq!(logits.len(), 10);
    check_golden("quickstart_small_cnn", &logits);
}

#[test]
fn vgg16_logits_reproduce_exactly() {
    let spec = vgg16();
    let logits = run_recipe(&spec, 7);
    assert_eq!(logits.len(), 1000);
    check_golden("vgg16", &logits);
}

/// The unfused (`BITFLOW_FUSE=0`) plan has its own golden rows — and because
/// the fused integer epilogue is bit-identical to the float threshold pass,
/// they pin the *same* digests as the fused recipes above. A divergence in
/// either direction (fused drifts, or fusion stops being exact) trips one of
/// the two rows.
#[test]
fn unfused_plan_reproduces_same_goldens() {
    let quick = run_recipe_with(&small_cnn(), 42, &PlanOptions::unfused());
    check_golden("quickstart_small_cnn_unfused", &quick);
    check_golden("quickstart_small_cnn", &quick);
    let vgg = run_recipe_with(&vgg16(), 7, &PlanOptions::unfused());
    check_golden("vgg16_unfused", &vgg);
    check_golden("vgg16", &vgg);
}

#[test]
fn batch_path_matches_golden_single_path() {
    // The batch serving path must land on the same logits as the
    // single-request path for the same recipe.
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    let image = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

    let mut ctx = model.new_context();
    let single = model.try_infer(&mut ctx, &image).expect("single");
    let batch = model.try_infer_batch(std::slice::from_ref(&image));
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].as_ref().expect("batch ok"), &single);
}
