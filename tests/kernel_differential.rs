//! Differential kernel-correctness harness (paper §III-B).
//!
//! For every kernel width the vector execution scheduler can select on this
//! host — scalar u64, SSE-128, AVX2-256, AVX-512, plus the channel-padding
//! fallback of rule 5 — force the `VectorScheduler` choice by capping the
//! detected feature set, run PressedConv, binary FC, and binary max-pool at
//! the forced level, and assert the results are
//!
//! * **bit-identical** to the im2col binary reference
//!   (`binary_conv_im2col` at scalar level), and
//! * **sign-consistent** with the full-precision float reference (on ±1
//!   inputs the binary dot products equal the float dot products exactly,
//!   so "sign-consistent" is checked as exact integer equality).
//!
//! Shapes are randomized with proptest; every case exercises the whole
//! width ladder so a regression in any one tier fails the same property.

use bitflow_gemm::sgemm::sgemm_naive;
use bitflow_ops::binary::{
    binary_conv_im2col, binary_fc, binary_max_pool, pressed_conv, BinaryFcWeights,
};
use bitflow_ops::float::max_pool;
use bitflow_ops::ConvParams;
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::{features, VectorScheduler};
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The width ladder of §III-B: feature caps (in bits) paired with the
/// level the scheduler must pick for a channel count divisible by that
/// width. Only tiers the host actually supports are exercised — on this
/// ladder a missing ISA demotes, which is itself asserted separately.
fn host_ladder() -> Vec<(usize, SimdLevel)> {
    let f = features();
    let mut ladder = vec![(64usize, SimdLevel::Scalar)];
    if f.sse2 {
        ladder.push((128, SimdLevel::Sse));
    }
    if f.avx2 {
        ladder.push((256, SimdLevel::Avx2));
    }
    if f.avx512f {
        ladder.push((512, SimdLevel::Avx512));
    }
    ladder
}

/// Every level selectable on this host, via capped schedulers, for a given
/// channel count. Returns (level, cap_bits) pairs; levels repeat when the
/// channel count is not divisible by a wider tier (demotion), which is fine
/// — running the same level twice is cheap and keeps the forcing logic
/// honest.
fn forced_levels(c: usize) -> Vec<(SimdLevel, usize)> {
    host_ladder()
        .into_iter()
        .map(|(bits, _)| {
            let sched = VectorScheduler::with_features(features().capped(bits));
            let choice = sched.select(c);
            assert!(
                width_bits(choice.level) <= bits,
                "cap {bits} must bound the selected level {:?}",
                choice.level
            );
            (choice.level, bits)
        })
        .collect()
}

fn width_bits(level: SimdLevel) -> usize {
    match level {
        SimdLevel::Avx512 => 512,
        SimdLevel::Avx2 => 256,
        SimdLevel::Sse => 128,
        _ => 64,
    }
}

fn pm1_vec(rng: &mut impl Rng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| if rng.gen::<bool>() { 1.0f32 } else { -1.0 })
        .collect()
}

/// Channel counts covering every scheduler rule: multiples of each vector
/// width, word-multiples, and the padding fallback (rule 5).
const CHANNELS: [usize; 8] = [3, 17, 33, 64, 96, 128, 256, 512];

#[test]
fn scheduler_forcing_selects_each_host_width() {
    // The harness only proves anything if the capped schedulers really do
    // force distinct kernels: for a 512-multiple channel count, each cap on
    // the ladder must select exactly its own tier.
    for (bits, want_level) in host_ladder() {
        let sched = VectorScheduler::with_features(features().capped(bits));
        assert_eq!(sched.select(512).level, want_level, "cap={bits}");
    }
    // The padding fallback: a non-multiple-of-32 width pads to 64 and runs
    // scalar words regardless of cap.
    for (bits, _) in host_ladder() {
        let sched = VectorScheduler::with_features(features().capped(bits));
        let choice = sched.select(3);
        assert!(choice.padded);
        assert_eq!(choice.c_padded, 64);
        assert_eq!(choice.level, SimdLevel::Scalar, "cap={bits}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    fn pressed_conv_differential(
        (h, w) in (3usize..7, 3usize..7),
        c_idx in 0usize..CHANNELS.len(),
        k in 1usize..6,
        ksz in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let c = CHANNELS[c_idx];
        prop_assume!(h + 2 * pad >= ksz && w + 2 * pad >= ksz);
        let shape = Shape::hwc(h, w, c);
        let fshape = FilterShape::new(k, ksz, ksz, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::from_vec(pm1_vec(&mut rng, shape.numel()), shape, Layout::Nhwc);
        let weights = pm1_vec(&mut rng, fshape.numel());
        let params = ConvParams::new(ksz, ksz, stride, pad);

        // Reference 1: im2col binary convolution, scalar level.
        let reference = binary_conv_im2col(SimdLevel::Scalar, &input, &weights, fshape, params);

        // Reference 2 (float, pad-free cases only: the float path pads with
        // 0.0 which is not sign-equivalent to the pressed −1 padding): on
        // ±1 data the float conv computes the same integers exactly.
        let float_ref = if pad == 0 {
            Some(bitflow_ops::float::conv_im2col(&input, &weights, fshape, params))
        } else {
            None
        };

        let pressed = BitTensor::from_tensor_padded(&input, pad);
        let bank = BitFilterBank::from_floats(&weights, fshape);
        for (level, cap) in forced_levels(c) {
            let got = pressed_conv(level, &pressed, &bank, stride);
            prop_assert_eq!(
                got.max_abs_diff(&reference), 0.0,
                "conv c={} {:?} (cap {}) diverges from im2col reference", c, level, cap
            );
            if let Some(fr) = &float_ref {
                prop_assert_eq!(
                    got.max_abs_diff(fr), 0.0,
                    "conv c={} {:?} (cap {}) diverges from float reference", c, level, cap
                );
            }
        }
    }

    fn binary_fc_differential(
        n_idx in 0usize..CHANNELS.len(),
        k in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let n = CHANNELS[n_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let input = pm1_vec(&mut rng, n);
        let wfloat = pm1_vec(&mut rng, n * k);
        let weights = BinaryFcWeights::pack(&wfloat, n, k);

        // Binary reference: scalar level.
        let reference = binary_fc(SimdLevel::Scalar, &input, &weights);

        // Float reference: sgemm over the same ±1 operands gives the exact
        // integer dot products.
        let mut float_ref = vec![0.0f32; k];
        sgemm_naive(&input, &wfloat, &mut float_ref, 1, n, k);
        prop_assert_eq!(&reference, &float_ref, "scalar binary FC vs float reference n={}", n);

        for (level, cap) in forced_levels(n) {
            let got = binary_fc(level, &input, &weights);
            prop_assert_eq!(
                &got, &reference,
                "fc n={} {:?} (cap {}) diverges", n, level, cap
            );
        }
    }

    fn binary_pool_differential(
        (h, w) in (2usize..8, 2usize..8),
        c_idx in 0usize..CHANNELS.len(),
        ksz in 1usize..3,
        stride in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let c = CHANNELS[c_idx];
        prop_assume!(h >= ksz && w >= ksz);
        let shape = Shape::hwc(h, w, c);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor::from_vec(pm1_vec(&mut rng, shape.numel()), shape, Layout::Nhwc);

        // Float reference: max over the ±1 window is sign-exact.
        let float_ref = max_pool(&input, ConvParams::new(ksz, ksz, stride, 0));
        let pressed = BitTensor::from_tensor(&input);
        // Binary reference: scalar level.
        let reference = binary_max_pool(SimdLevel::Scalar, &pressed, ksz, ksz, stride);
        prop_assert_eq!(
            reference.to_tensor().max_abs_diff(&float_ref), 0.0,
            "scalar binary pool vs float reference c={}", c
        );

        for (level, cap) in forced_levels(c) {
            let got = binary_max_pool(level, &pressed, ksz, ksz, stride);
            prop_assert_eq!(
                got.words(), reference.words(),
                "pool c={} {:?} (cap {}) diverges bitwise", c, level, cap
            );
        }
    }
}
