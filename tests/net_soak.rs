//! Chaos soak for the network front-end (`bitflow-net`).
//!
//! Real TCP clients drive a two-tenant server (one quota-metered) through
//! the HTTP listener while the seeded chaos streams inject at BOTH
//! layers: serving-runtime chaos (slow operators, worker panics, queue
//! stalls, worker kills) and wire chaos (connection kills at accept, read
//! stalls, truncated writes). One request per connection, so the
//! connection-scoped chaos streams are fully deterministic in the
//! connection id — which makes the client-side damage *predictable from
//! the seed*: exactly the accepted connections whose kill/truncation
//! stream fires are the ones that die without a full response.
//!
//! The contract:
//!
//! * **Bit-identical 200s** — every complete 200 body equals the tenant's
//!   serial-oracle logits for that input, chaos or no chaos.
//! * **Exact gauge↔tally conservation per tenant** — the serve-layer law
//!   (`submitted == accepted + rejected_*`, every admitted request
//!   resolved exactly once) holds per tenant; client-side tallies pin
//!   `submitted` and `completed` exactly once the seed-predicted broken
//!   connections are accounted for; and at the wire,
//!   `accepted_conns == connections opened` with zero sheds.
//! * **Each chaos type fired** (full mode): connection kills, truncated
//!   writes, and worker panics all observed; the read-stall stream is
//!   non-empty over the connection range actually used.
//! * **Flight-recorder tail sampling** — the soak runs fully traced;
//!   every complete error response is retrievable from the recorder by
//!   its client-supplied request id, the recorder never exceeds its byte
//!   budget, and the dump exports to a loadable Chrome trace.
//!
//! Sizing mirrors `serve_soak`: `BITFLOW_QUICK=1` → 300 requests,
//! default 1500, `BITFLOW_SOAK_REQUESTS=N` overrides; `BITFLOW_CHAOS`
//! replays a seed verbatim.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bitflow::prelude::*;
use bitflow_net::{NetConfig, NetServer};
use bitflow_telemetry::{to_chrome_trace, FlightRecorder, RecorderConfig};
use bitflow_tensor::io::encode_tensor;
use rand::{rngs::StdRng, SeedableRng};

const DISTINCT_INPUTS: usize = 16;

fn soak_requests() -> usize {
    if let Ok(v) = std::env::var("BITFLOW_SOAK_REQUESTS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var_os("BITFLOW_QUICK").is_some_and(|v| v == "1") {
        300
    } else {
        1500
    }
}

fn compiled(seed: u64) -> Arc<CompiledModel> {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    // The soak's oracle replays the served logits against this same plan;
    // under the default env that plan must be the fused one.
    if bitflow_graph::fuse_enabled_from(std::env::var("BITFLOW_FUSE").ok().as_deref()) {
        assert!(
            !model.fused_conv_names().is_empty(),
            "net soak expected a fused plan"
        );
    }
    Arc::new(model)
}

/// Client-side view of one request's fate.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Complete 200, oracle-checked.
    Ok,
    /// Complete rejection that implies the request reached `submit`
    /// (429 queue-full/shedding/quota, 503 draining).
    Rejected,
    /// Complete 504: admitted, then the deadline cut it down.
    Deadline,
    /// Complete 500 carrying an injected chaos panic.
    Failed,
    /// No complete response: the connection died (injected kill or
    /// truncated write). Whether the request was submitted is unknowable
    /// from this side of the wire — the seed arithmetic accounts for it.
    Broken,
}

/// Reads one full response; `None` on a dead/truncated connection.
fn read_response(stream: &mut TcpStream) -> Option<(u16, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let status: u16 = head.split("\r\n").next()?.split(' ').nth(1)?.parse().ok()?;
    let content_length: usize = head
        .split("\r\n")
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())?;
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None, // truncated mid-body
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    Some((status, body))
}

#[test]
fn tcp_chaos_soak_conserves_per_tenant_and_preserves_logits() {
    let n = soak_requests();
    let model_a = compiled(42);
    let model_b = compiled(7);
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(42);
    let inputs: Vec<Tensor> = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    let encoded: Vec<Vec<u8>> = inputs.iter().map(|i| encode_tensor(i).to_vec()).collect();

    let mut ctx_a = model_a.new_context();
    let mut ctx_b = model_b.new_context();
    let oracle_a: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_a.infer(&mut ctx_a, i))
        .collect();
    let oracle_b: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_b.infer(&mut ctx_b, i))
        .collect();

    let chaos = ChaosConfig::from_env().unwrap_or_else(|| ChaosConfig::with_seed(0xB17F));
    let mut registry = ModelRegistry::new();
    registry.register("a", Arc::clone(&model_a), None);
    registry.register("b", Arc::clone(&model_b), Some(8));
    // The whole soak runs traced into a bounded flight recorder: every
    // request carries a client id (`soak-{i}`), so after the run the
    // recorder's tail-sampling contract can be checked against the
    // client-side tallies.
    let recorder_cfg = RecorderConfig {
        max_bytes: 8 << 20,
        ..RecorderConfig::default()
    };
    let recorder = Arc::new(FlightRecorder::new(recorder_cfg.clone()));
    let server = Arc::new(Server::start_multi(
        registry,
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            shed_policy: ShedPolicy::DeadlineAware,
            max_batch: 4,
            coalesce_window: Duration::ZERO,
            breaker: BreakerConfig {
                fault_threshold: 64,
                cooldown: Duration::from_millis(10),
            },
            chaos: Some(chaos.clone()),
            default_deadline: None,
            recorder: Some(Arc::clone(&recorder)),
            ..ServerConfig::default()
        },
    ));
    let gauges_b = server.client("b").expect("registered").entry().gauges();
    let net = NetServer::bind(
        Arc::clone(&server),
        NetConfig {
            // High cap: this soak wants wire chaos, not accept-loop
            // shedding (the cap has its own test in `hostile.rs`) — zero
            // sheds keeps `accepted_conns == connects` exact.
            max_conns: 256,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = net.local_addr();

    // 4 client threads, requests striped across them; one request per
    // connection so connection-scoped chaos is a pure function of the
    // connection id.
    const CLIENTS: usize = 4;
    let workers: Vec<std::thread::JoinHandle<Vec<(usize, usize, Outcome)>>> = (0..CLIENTS)
        .map(|t| {
            let encoded = encoded.clone();
            let oracle_a = oracle_a.clone();
            let oracle_b = oracle_b.clone();
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for i in (t..n).step_by(CLIENTS) {
                    let tenant = usize::from(i % 3 == 0); // 0 = a, 1 = b
                    let path = if tenant == 0 { "/v1/infer/a" } else { "/v1/infer/b" };
                    let deadline_header = match i % 10 {
                        9 => "x-bitflow-deadline-ms: 0\r\n",
                        7 | 8 => "x-bitflow-deadline-ms: 500\r\n",
                        _ => "",
                    };
                    let body = &encoded[i % DISTINCT_INPUTS];
                    let outcome = (|| {
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            return Outcome::Broken;
                        };
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                        let req = format!(
                            "POST {path} HTTP/1.1\r\nx-bitflow-request-id: soak-{i}\r\n{deadline_header}content-length: {}\r\nconnection: close\r\n\r\n",
                            body.len()
                        );
                        if stream.write_all(req.as_bytes()).is_err()
                            || stream.write_all(body).is_err()
                        {
                            // The server may already have killed the
                            // connection; drain whatever it did send.
                            return match read_response(&mut stream) {
                                Some((status, resp)) => classify(i, tenant, status, &resp, &oracle_a, &oracle_b),
                                None => Outcome::Broken,
                            };
                        }
                        match read_response(&mut stream) {
                            Some((status, resp)) => classify(i, tenant, status, &resp, &oracle_a, &oracle_b),
                            None => Outcome::Broken,
                        }
                    })();
                    outcomes.push((i, tenant, outcome));
                }
                outcomes
            })
        })
        .collect();

    fn classify(
        i: usize,
        tenant: usize,
        status: u16,
        body: &[u8],
        oracle_a: &[Vec<f32>],
        oracle_b: &[Vec<f32>],
    ) -> Outcome {
        match status {
            200 => {
                let logits: Vec<f32> = body
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect();
                let oracle = if tenant == 0 { oracle_a } else { oracle_b };
                assert_eq!(
                    logits,
                    oracle[i % DISTINCT_INPUTS],
                    "request {i}: 200 body diverged from the tenant's serial oracle"
                );
                Outcome::Ok
            }
            429 | 503 => Outcome::Rejected,
            504 => Outcome::Deadline,
            500 => {
                let text = String::from_utf8_lossy(body).to_string();
                assert!(
                    text.contains("chaos"),
                    "request {i}: only injected panics may 500, got: {text}"
                );
                Outcome::Failed
            }
            other => panic!("request {i}: unexpected wire status {other}"),
        }
    }

    let mut tallies = [[0u64; 5]; 2]; // [tenant][Ok, Rejected, Deadline, Failed, Broken]
    let mut error_ids: Vec<usize> = Vec::new(); // complete 500s/504s, by request index
    for worker in workers {
        for (i, tenant, outcome) in worker.join().expect("client thread") {
            tallies[tenant][outcome as usize] += 1;
            if matches!(outcome, Outcome::Failed | Outcome::Deadline) {
                error_ids.push(i);
            }
        }
    }

    assert!(net.shutdown(), "drain must complete within the budget");
    let snap_a = server.gauges().snapshot(); // "a" registered first: default entry
    let snap_b = gauges_b.snapshot();

    // --- Wire-level conservation -------------------------------------
    // Every connection the clients opened was accepted exactly once (no
    // sheds at this cap), even the ones chaos then killed.
    assert_eq!(snap_a.net_rejected_conns, 0, "cap must never shed here");
    assert_eq!(
        snap_a.net_accepted_conns, n as u64,
        "one connection per request, each accepted exactly once"
    );
    assert!(snap_a.net_bytes_in > 0 && snap_a.net_bytes_out > 0);

    // --- Seed arithmetic: predict the broken connections --------------
    // One request per connection and connection ids are assigned in
    // accept order 0..n, so the kill and first-response-truncation
    // streams tell us exactly how many connections died client-side.
    let kills: u64 = (0..n as u64).filter(|&c| chaos.conn_kill_hit(c)).count() as u64;
    let truncs: u64 = (0..n as u64)
        .filter(|&c| !chaos.conn_kill_hit(c) && chaos.trunc_write_hit(c, 0))
        .count() as u64;
    let broken = tallies[0][Outcome::Broken as usize] + tallies[1][Outcome::Broken as usize];
    assert_eq!(
        broken,
        kills + truncs,
        "client-side broken connections must equal the seed-predicted kills + truncations"
    );

    // --- Per-tenant conservation --------------------------------------
    for (tenant, snap) in [(0usize, &snap_a), (1usize, &snap_b)] {
        let [ok, rejected, deadline, failed, broken] = tallies[tenant];
        let rejected_gauge = snap.rejected_queue_full
            + snap.rejected_shedding
            + snap.rejected_draining
            + snap.rejected_quota;

        // The serve-layer law, exact, per tenant.
        assert_eq!(
            snap.submitted,
            snap.accepted + rejected_gauge,
            "tenant {tenant}: submitted splits into accepted + rejected"
        );
        assert_eq!(
            snap.accepted,
            snap.completed
                + snap.failed
                + snap.shed_deadline
                + snap.deadline_missed
                + snap.cancelled,
            "tenant {tenant}: every admitted request resolved exactly once"
        );
        assert_eq!(snap.worker_panics, snap.failed, "tenant {tenant}: panics");

        // Gauge↔tally: every complete response is pinned exactly; broken
        // connections bound the slack (a killed connection never
        // submitted; a truncated one resolved before the wire died).
        assert!(
            snap.completed >= ok && snap.completed <= ok + broken,
            "tenant {tenant}: completed {} outside [{}, {}]",
            snap.completed,
            ok,
            ok + broken
        );
        assert!(
            rejected_gauge >= rejected && rejected_gauge <= rejected + broken,
            "tenant {tenant}: rejections out of range"
        );
        assert!(
            snap.shed_deadline + snap.deadline_missed >= deadline
                && snap.shed_deadline + snap.deadline_missed <= deadline + broken,
            "tenant {tenant}: deadline outcomes out of range"
        );
        let known = ok + rejected + deadline + failed;
        assert!(
            snap.submitted >= known && snap.submitted <= known + broken,
            "tenant {tenant}: submitted {} outside [{known}, {}]",
            snap.submitted,
            known + broken
        );
        assert!(snap.completed > 0, "tenant {tenant} starved");
    }
    assert_eq!(snap_a.queue_depth, 0, "drain leaves the queue empty");

    // --- Each chaos type must actually fire (full mode) ---------------
    if n >= 1000 {
        assert!(kills > 0, "the connection-kill stream never fired");
        assert!(truncs > 0, "the truncated-write stream never fired");
        assert!(
            snap_a.worker_panics + snap_b.worker_panics > 0,
            "worker-panic chaos never fired"
        );
        let stalls = (0..n as u64)
            .flat_map(|c| (0..4u64).map(move |r| (c, r)))
            .filter(|&(c, r)| chaos.read_stall_hit(c, r))
            .count();
        assert!(
            stalls > 0,
            "the read-stall stream is empty over the soak range"
        );
    }

    // --- Flight-recorder contract under chaos --------------------------
    // Tail-based sampling keeps every error trace: each complete error
    // response the clients saw (injected 500s, deadline 504s) must be
    // retrievable by the client-supplied id, with a verdict.
    for i in &error_ids {
        let trace = recorder
            .find(&format!("soak-{i}"))
            .unwrap_or_else(|| panic!("error request soak-{i} missing from the flight recorder"));
        assert!(
            !trace.outcome.is_empty(),
            "request soak-{i}: error traces must carry a verdict"
        );
    }
    // The recorder is bounded: its accounting never exceeds the
    // configured budget, chaos or no chaos.
    assert!(
        recorder.bytes() <= recorder_cfg.max_bytes,
        "recorder grew past its byte budget: {} > {}",
        recorder.bytes(),
        recorder_cfg.max_bytes
    );
    // Every retained trace is structurally sound — stages sorted, inside
    // the request window — and the whole dump exports to a
    // Perfetto-loadable Chrome trace document.
    let dump = recorder.dump();
    assert!(!dump.is_empty(), "a traced soak must retain something");
    for trace in &dump {
        let slack = trace.total_ns / 20 + 500_000;
        let mut prev_start = 0u64;
        for s in &trace.stages {
            assert!(
                s.start_ns >= prev_start,
                "trace {}: stages must be sorted",
                trace.id
            );
            prev_start = s.start_ns;
            assert!(
                s.start_ns + s.duration_ns <= trace.total_ns + slack,
                "trace {}: stage {} overruns the request window",
                trace.id,
                s.stage.as_str()
            );
        }
    }
    let chrome = to_chrome_trace(&dump);
    assert!(
        chrome.starts_with("{\"traceEvents\":"),
        "chrome export must be loadable"
    );
}
