//! Chaos soak for the serving runtime (`bitflow-serve`).
//!
//! One `Server` over a shared `small_cnn` model takes a few thousand
//! requests with a mixed deadline profile while seed-deterministic chaos
//! injects slow operators, panicking operators, queue stalls, and worker
//! kills. The assertions are the serving contract:
//!
//! * **No deadlock, no lost request** — every submission resolves exactly
//!   once (admission rejections resolve at `submit`; admitted requests
//!   resolve through their handle, polled with a watchdog timeout so a
//!   hang fails fast instead of wedging the suite).
//! * **Counters conserve** — the gauge totals equal the per-request
//!   outcomes tallied caller-side, and the `ServeSnapshot` conservation
//!   law holds: `submitted == accepted + rejected_*` and
//!   `accepted == completed + failed + shed_deadline + deadline_missed +
//!   cancelled`, with the queue empty after drain.
//! * **Successes are bit-identical to serial inference** — panics,
//!   cancellations, context replacement, and worker restarts must never
//!   perturb the logits of the requests that do complete.
//!
//! Sizing: `BITFLOW_QUICK=1` runs a few hundred requests (CI gate);
//! `BITFLOW_SOAK_REQUESTS=N` overrides; the default sits in between. The
//! chaos seed comes from `BITFLOW_CHAOS` when set, so a failing seed can
//! be replayed verbatim.

use bitflow::prelude::*;
use bitflow_graph::BitFlowError;
use bitflow_serve::ResponseHandle;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct inputs cycled over the request stream (request `i` sends
/// input `i % DISTINCT_INPUTS`, so each success has a precomputed oracle).
const DISTINCT_INPUTS: usize = 16;

fn soak_requests() -> usize {
    if let Ok(v) = std::env::var("BITFLOW_SOAK_REQUESTS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var_os("BITFLOW_QUICK").is_some_and(|v| v == "1") {
        300
    } else {
        1500
    }
}

fn compiled_small_cnn(seed: u64) -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs: Vec<Tensor> = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    (Arc::new(CompiledModel::compile(&spec, &weights)), inputs)
}

/// Waits for a handle with a watchdog: a request that does not resolve
/// within `timeout` is a deadlock, reported as a failure rather than a
/// hung test process.
fn wait_with_watchdog(
    handle: &ResponseHandle,
    timeout: Duration,
) -> Result<Vec<f32>, BitFlowError> {
    let start = Instant::now();
    loop {
        if let Some(result) = handle.try_wait() {
            return result;
        }
        assert!(
            start.elapsed() < timeout,
            "request {} did not resolve within {timeout:?}: serving runtime deadlocked",
            handle.id()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Per-request outcomes tallied caller-side, to be reconciled against the
/// server's gauges.
#[derive(Default)]
struct Tally {
    completed: u64,
    failed: u64,
    deadline: u64, // shed before running or cut mid-run: same client error
    cancelled: u64,
    rejected: u64,
}

#[test]
fn chaos_soak_conserves_every_request_and_preserves_logits() {
    let n = soak_requests();
    let (model, inputs) = compiled_small_cnn(42);

    // Serial oracle, computed before any chaos hook is installed on the
    // model (the hook only fires on serving threads, but computing the
    // oracle first also keeps this test meaningful if that ever changes).
    let mut oracle_ctx = model.new_context();
    let oracle: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut oracle_ctx, img))
        .collect();

    let chaos = ChaosConfig::from_env().unwrap_or_else(|| ChaosConfig::with_seed(0xB17F));
    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            shed_policy: ShedPolicy::DeadlineAware,
            breaker: BreakerConfig {
                // High threshold: the soak wants sustained admission, not
                // a shedding wall; the breaker has its own unit tests.
                fault_threshold: 64,
                cooldown: Duration::from_millis(10),
            },
            chaos: Some(chaos),
            default_deadline: None,
        },
    );

    let mut tally = Tally::default();
    let mut pending: Vec<(usize, ResponseHandle)> = Vec::with_capacity(n);
    for i in 0..n {
        let input = inputs[i % DISTINCT_INPUTS].clone();
        // Mixed deadline profile: most requests unbounded, some generous,
        // some hopeless (they exercise shedding and mid-run expiry).
        let submitted = match i % 10 {
            9 => server.submit_with_deadline(input, Duration::from_micros(50)),
            7 | 8 => server.submit_with_deadline(input, Duration::from_millis(500)),
            _ => server.submit(input),
        };
        match submitted {
            Ok(handle) => {
                // A slice of explicit client cancellations.
                if i % 37 == 0 {
                    handle.cancel();
                }
                pending.push((i, handle));
            }
            Err(_reason) => tally.rejected += 1,
        }
    }

    for (i, handle) in pending {
        match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(logits) => {
                assert_eq!(
                    logits,
                    oracle[i % DISTINCT_INPUTS],
                    "request {i} completed with logits differing from serial inference"
                );
                tally.completed += 1;
            }
            Err(BitFlowError::DeadlineExceeded) => tally.deadline += 1,
            Err(BitFlowError::Cancelled) => tally.cancelled += 1,
            Err(BitFlowError::Internal(msg)) => {
                assert!(
                    msg.contains("chaos"),
                    "request {i}: only injected panics may fail here, got: {msg}"
                );
                tally.failed += 1;
            }
            Err(other) => panic!("request {i}: unexpected typed error {other}"),
        }
    }

    let snap = server.shutdown();

    // Caller-side tallies reconcile exactly with the server's gauges.
    assert_eq!(snap.submitted, n as u64, "every submission counted");
    assert_eq!(snap.completed, tally.completed);
    assert_eq!(snap.failed, tally.failed);
    assert_eq!(snap.cancelled, tally.cancelled);
    assert_eq!(
        snap.shed_deadline + snap.deadline_missed,
        tally.deadline,
        "deadline outcomes split across shed/missed must sum to the client view"
    );
    assert_eq!(
        snap.rejected_queue_full + snap.rejected_shedding + snap.rejected_draining,
        tally.rejected
    );

    // The ServeSnapshot conservation law.
    assert_eq!(
        snap.submitted,
        snap.accepted + snap.rejected_queue_full + snap.rejected_shedding + snap.rejected_draining
    );
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.shed_deadline + snap.deadline_missed + snap.cancelled
    );
    assert_eq!(snap.queue_depth, 0, "drain leaves the queue empty");

    // All inputs are well-formed, so the only failures are isolated
    // panics — and each one was counted as exactly one worker fault.
    assert_eq!(snap.worker_panics, snap.failed);

    // The soak must actually exercise the machinery it claims to: chaos
    // panics fire at ~2% of requests and the single-threaded submitter
    // outruns the pool, so a healthy run sees faults and overload.
    assert!(snap.completed > 0, "no request completed");
    if n >= 1000 {
        assert!(snap.worker_panics > 0, "chaos panics never fired");
        assert!(
            snap.rejected_queue_full + snap.shed_deadline + snap.deadline_missed > 0,
            "no overload behaviour observed"
        );
    }
}

/// The same pipeline with chaos off: everything completes, nothing is
/// shed, and the fault counters stay at zero — the chaos soak's control
/// group, guarding against the runtime injecting failures of its own.
#[test]
fn calm_soak_completes_everything() {
    let n = soak_requests().min(500);
    let (model, inputs) = compiled_small_cnn(43);
    let mut oracle_ctx = model.new_context();
    let oracle: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut oracle_ctx, img))
        .collect();

    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_capacity: n.max(1),
            ..ServerConfig::default()
        },
    );
    let handles: Vec<(usize, ResponseHandle)> = (0..n)
        .map(|i| {
            let handle = server
                .submit(inputs[i % DISTINCT_INPUTS].clone())
                .unwrap_or_else(|r| panic!("request {i} rejected ({r}) with an unbounded queue"));
            (i, handle)
        })
        .collect();
    for (i, handle) in handles {
        let logits = match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(l) => l,
            Err(e) => panic!("request {i} failed without chaos: {e}"),
        };
        assert_eq!(logits, oracle[i % DISTINCT_INPUTS], "request {i} diverged");
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed, n as u64);
    assert_eq!(snap.accepted, n as u64);
    assert_eq!(
        snap.failed + snap.worker_panics + snap.worker_restarts + snap.breaker_trips,
        0,
        "calm soak must be fault-free"
    );
}
