//! Chaos soak for the serving runtime (`bitflow-serve`).
//!
//! One `Server` over a shared `small_cnn` model takes a few thousand
//! requests with a mixed deadline profile while seed-deterministic chaos
//! injects slow operators, panicking operators, queue stalls, and worker
//! kills. The assertions are the serving contract:
//!
//! * **No deadlock, no lost request** — every submission resolves exactly
//!   once (admission rejections resolve at `submit`; admitted requests
//!   resolve through their handle, polled with a watchdog timeout so a
//!   hang fails fast instead of wedging the suite).
//! * **Counters conserve** — the gauge totals equal the per-request
//!   outcomes tallied caller-side, and the `ServeSnapshot` conservation
//!   law holds: `submitted == accepted + rejected_*` and
//!   `accepted == completed + failed + shed_deadline + deadline_missed +
//!   cancelled`, with the queue empty after drain.
//! * **Successes are bit-identical to serial inference** — panics,
//!   cancellations, context replacement, and worker restarts must never
//!   perturb the logits of the requests that do complete.
//!
//! The multi-model variant runs the same contract per tenant: two models
//! behind one server (one quota-metered), continuous micro-batching on,
//! and a mid-stream hot swap to bit-identical weights — each tenant's
//! gauges must conserve independently and every success must match that
//! tenant's oracle.
//!
//! Sizing: `BITFLOW_QUICK=1` runs a few hundred requests (CI gate);
//! `BITFLOW_SOAK_REQUESTS=N` overrides; the default sits in between. The
//! chaos seed comes from `BITFLOW_CHAOS` when set, so a failing seed can
//! be replayed verbatim.

use bitflow::prelude::*;
use bitflow_graph::BitFlowError;
use bitflow_serve::ResponseHandle;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct inputs cycled over the request stream (request `i` sends
/// input `i % DISTINCT_INPUTS`, so each success has a precomputed oracle).
const DISTINCT_INPUTS: usize = 16;

fn soak_requests() -> usize {
    if let Ok(v) = std::env::var("BITFLOW_SOAK_REQUESTS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if std::env::var_os("BITFLOW_QUICK").is_some_and(|v| v == "1") {
        300
    } else {
        1500
    }
}

fn compiled_small_cnn(seed: u64) -> (Arc<CompiledModel>, Vec<Tensor>) {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let inputs: Vec<Tensor> = (0..DISTINCT_INPUTS)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();
    let model = CompiledModel::compile(&spec, &weights);
    // The soak exercises the production plan: under the default env the
    // serving path must run the fused Conv→BN→Sign epilogue.
    if bitflow_graph::fuse_enabled_from(std::env::var("BITFLOW_FUSE").ok().as_deref()) {
        assert!(
            !model.fused_conv_names().is_empty(),
            "serving soak expected a fused plan"
        );
    }
    (Arc::new(model), inputs)
}

/// Waits for a handle with a watchdog: a request that does not resolve
/// within `timeout` is a deadlock, reported as a failure rather than a
/// hung test process.
fn wait_with_watchdog(
    handle: &ResponseHandle,
    timeout: Duration,
) -> Result<Vec<f32>, BitFlowError> {
    let start = Instant::now();
    loop {
        if let Some(result) = handle.try_wait() {
            return result;
        }
        assert!(
            start.elapsed() < timeout,
            "request {} did not resolve within {timeout:?}: serving runtime deadlocked",
            handle.id()
        );
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Per-request outcomes tallied caller-side, to be reconciled against the
/// server's gauges.
#[derive(Default)]
struct Tally {
    completed: u64,
    failed: u64,
    deadline: u64, // shed before running or cut mid-run: same client error
    cancelled: u64,
    rejected: u64,
}

#[test]
fn chaos_soak_conserves_every_request_and_preserves_logits() {
    let n = soak_requests();
    let (model, inputs) = compiled_small_cnn(42);

    // Serial oracle, computed before any chaos hook is installed on the
    // model (the hook only fires on serving threads, but computing the
    // oracle first also keeps this test meaningful if that ever changes).
    let mut oracle_ctx = model.new_context();
    let oracle: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut oracle_ctx, img))
        .collect();

    let chaos = ChaosConfig::from_env().unwrap_or_else(|| ChaosConfig::with_seed(0xB17F));
    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            shed_policy: ShedPolicy::DeadlineAware,
            // Single-request serving: the batched path has its own soak
            // (`multi_model_batched_chaos_soak_conserves_per_model`).
            max_batch: 1,
            coalesce_window: Duration::ZERO,
            breaker: BreakerConfig {
                // High threshold: the soak wants sustained admission, not
                // a shedding wall; the breaker has its own unit tests.
                fault_threshold: 64,
                cooldown: Duration::from_millis(10),
            },
            chaos: Some(chaos),
            default_deadline: None,
            recorder: None,
            ..ServerConfig::default()
        },
    );

    let mut tally = Tally::default();
    let mut pending: Vec<(usize, ResponseHandle)> = Vec::with_capacity(n);
    for i in 0..n {
        // Pace the submitter in bursts: an unthrottled loop finishes in
        // microseconds and admits only ~2 queue-fulls of work, so almost
        // no request id ever reaches the chaos streams. Bursts of 8 keep
        // the queue pressured (overload still observed) while hundreds of
        // requests actually run.
        if i % 8 == 7 {
            std::thread::sleep(Duration::from_micros(100));
        }
        let input = inputs[i % DISTINCT_INPUTS].clone();
        // Mixed deadline profile: most requests unbounded, some generous,
        // some hopeless (they exercise shedding and mid-run expiry).
        let submitted = match i % 10 {
            9 => server.submit_with_deadline(input, Duration::from_micros(50)),
            7 | 8 => server.submit_with_deadline(input, Duration::from_millis(500)),
            _ => server.submit(input),
        };
        match submitted {
            Ok(handle) => {
                // A slice of explicit client cancellations.
                if i % 37 == 0 {
                    handle.cancel();
                }
                pending.push((i, handle));
            }
            Err(_reason) => tally.rejected += 1,
        }
    }

    for (i, handle) in pending {
        match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(logits) => {
                assert_eq!(
                    logits,
                    oracle[i % DISTINCT_INPUTS],
                    "request {i} completed with logits differing from serial inference"
                );
                tally.completed += 1;
            }
            Err(BitFlowError::DeadlineExceeded) => tally.deadline += 1,
            Err(BitFlowError::Cancelled) => tally.cancelled += 1,
            Err(BitFlowError::Internal(msg)) => {
                assert!(
                    msg.contains("chaos"),
                    "request {i}: only injected panics may fail here, got: {msg}"
                );
                tally.failed += 1;
            }
            Err(other) => panic!("request {i}: unexpected typed error {other}"),
        }
    }

    let snap = server.shutdown();

    // Caller-side tallies reconcile exactly with the server's gauges.
    assert_eq!(snap.submitted, n as u64, "every submission counted");
    assert_eq!(snap.completed, tally.completed);
    assert_eq!(snap.failed, tally.failed);
    assert_eq!(snap.cancelled, tally.cancelled);
    assert_eq!(
        snap.shed_deadline + snap.deadline_missed,
        tally.deadline,
        "deadline outcomes split across shed/missed must sum to the client view"
    );
    assert_eq!(
        snap.rejected_queue_full
            + snap.rejected_shedding
            + snap.rejected_draining
            + snap.govern.rejected_memory,
        tally.rejected
    );

    // The ServeSnapshot conservation law (rejected_* includes the
    // resource governor's memory column).
    assert_eq!(
        snap.submitted,
        snap.accepted
            + snap.rejected_queue_full
            + snap.rejected_shedding
            + snap.rejected_draining
            + snap.govern.rejected_memory
    );
    assert_eq!(
        snap.accepted,
        snap.completed + snap.failed + snap.shed_deadline + snap.deadline_missed + snap.cancelled
    );
    assert_eq!(snap.queue_depth, 0, "drain leaves the queue empty");

    // All inputs are well-formed, so the only failures are isolated
    // panics — and each one was counted as exactly one worker fault.
    assert_eq!(snap.worker_panics, snap.failed);

    // The soak must actually exercise the machinery it claims to: chaos
    // panics fire at ~2% of requests and the single-threaded submitter
    // outruns the pool, so a healthy run sees faults and overload.
    assert!(snap.completed > 0, "no request completed");
    if n >= 1000 {
        assert!(snap.worker_panics > 0, "chaos panics never fired");
        assert!(
            snap.rejected_queue_full + snap.shed_deadline + snap.deadline_missed > 0,
            "no overload behaviour observed"
        );
    }
}

/// A model compiled from `seed` without fresh inputs (for tenants that
/// share the input set of [`compiled_small_cnn`]).
fn compiled_model_only(seed: u64) -> Arc<CompiledModel> {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    Arc::new(CompiledModel::compile(&spec, &weights))
}

/// The multi-tenant, micro-batched variant of the chaos soak: two models
/// behind one server (one quota-metered), mixed-deadline traffic
/// interleaved across them, continuous micro-batching on, and a
/// zero-downtime hot swap to bit-identical replacement weights
/// mid-stream. Each tenant's gauges must obey the conservation law
/// independently, every success must match that tenant's serial oracle,
/// and the coalescer must have formed real batches under saturation.
#[test]
fn multi_model_batched_chaos_soak_conserves_per_model() {
    let n = soak_requests();
    let (model_a, inputs) = compiled_small_cnn(42);
    let model_b = compiled_model_only(7);
    // The hot-swap replacement: same weights as `model_a`, recompiled —
    // logits stay bit-identical, so the oracle survives the swap while
    // the swap machinery (Arc flip under live load) is fully exercised.
    let model_a2 = compiled_small_cnn(42).0;

    let mut ctx_a = model_a.new_context();
    let mut ctx_b = model_b.new_context();
    let oracle_a: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_a.infer(&mut ctx_a, i))
        .collect();
    let oracle_b: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model_b.infer(&mut ctx_b, i))
        .collect();

    let chaos = ChaosConfig::from_env().unwrap_or_else(|| ChaosConfig::with_seed(0xB17F));
    let mut registry = ModelRegistry::new();
    registry.register("a", Arc::clone(&model_a), None);
    registry.register("b", Arc::clone(&model_b), Some(8));
    let server = Server::start_multi(
        registry,
        ServerConfig {
            workers: 4,
            queue_capacity: 32,
            shed_policy: ShedPolicy::DeadlineAware,
            max_batch: 8,
            coalesce_window: Duration::from_micros(50),
            breaker: BreakerConfig {
                fault_threshold: 64,
                cooldown: Duration::from_millis(10),
            },
            chaos: Some(chaos),
            default_deadline: None,
            recorder: None,
            ..ServerConfig::default()
        },
    );
    let gauges_b = server.client("b").expect("registered").entry().gauges();

    // (model index 0 = a, 1 = b) → caller-side tallies and pending sets.
    let mut tallies = [Tally::default(), Tally::default()];
    let mut submitted = [0u64, 0u64];
    let mut pending: Vec<(usize, usize, ResponseHandle)> = Vec::with_capacity(n);
    for i in 0..n {
        if i == n / 2 {
            let displaced = server
                .client("a")
                .expect("registered")
                .swap(Arc::clone(&model_a2));
            assert!(
                Arc::ptr_eq(&displaced, &model_a),
                "swap must return the model it displaced"
            );
        }
        let which = usize::from(i % 3 == 0); // a, a, b, a, a, b, ...
        let name = if which == 0 { "a" } else { "b" };
        let client = server.client(name).expect("registered");
        let input = inputs[i % DISTINCT_INPUTS].clone();
        let result = match i % 10 {
            9 => client.submit_with_deadline(input, Duration::from_micros(50)),
            7 | 8 => client.submit_with_deadline(input, Duration::from_millis(500)),
            _ => client.submit(input),
        };
        submitted[which] += 1;
        match result {
            Ok(handle) => {
                if i % 37 == 0 {
                    handle.cancel();
                }
                pending.push((which, i, handle));
            }
            Err(_reason) => tallies[which].rejected += 1,
        }
    }

    for (which, i, handle) in pending {
        let oracle = if which == 0 { &oracle_a } else { &oracle_b };
        let tally = &mut tallies[which];
        match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(logits) => {
                assert_eq!(
                    logits,
                    oracle[i % DISTINCT_INPUTS],
                    "request {i} (model {which}) diverged from its tenant's oracle"
                );
                tally.completed += 1;
            }
            Err(BitFlowError::DeadlineExceeded) => tally.deadline += 1,
            Err(BitFlowError::Cancelled) => tally.cancelled += 1,
            Err(BitFlowError::Internal(msg)) => {
                assert!(msg.contains("chaos"), "request {i}: {msg}");
                tally.failed += 1;
            }
            Err(other) => panic!("request {i}: unexpected typed error {other}"),
        }
    }

    assert_eq!(
        server.client("a").expect("registered").entry().swaps(),
        1,
        "the mid-stream hot swap must be recorded"
    );
    let snap_a = server.shutdown(); // "a" registered first: the default entry
    let snap_b = gauges_b.snapshot();

    for (which, snap) in [(0usize, &snap_a), (1usize, &snap_b)] {
        let tally = &tallies[which];
        let rejected = snap.rejected_queue_full
            + snap.rejected_shedding
            + snap.rejected_draining
            + snap.rejected_quota
            + snap.govern.rejected_memory;
        assert_eq!(snap.submitted, submitted[which], "model {which} submitted");
        assert_eq!(snap.completed, tally.completed, "model {which} completed");
        assert_eq!(snap.failed, tally.failed, "model {which} failed");
        assert_eq!(snap.cancelled, tally.cancelled, "model {which} cancelled");
        assert_eq!(
            snap.shed_deadline + snap.deadline_missed,
            tally.deadline,
            "model {which} deadline outcomes"
        );
        assert_eq!(rejected, tally.rejected, "model {which} rejections");
        // The conservation law, independently per tenant.
        assert_eq!(snap.submitted, snap.accepted + rejected, "model {which}");
        assert_eq!(
            snap.accepted,
            snap.completed
                + snap.failed
                + snap.shed_deadline
                + snap.deadline_missed
                + snap.cancelled,
            "model {which} admitted requests all resolved exactly once"
        );
        assert_eq!(snap.worker_panics, snap.failed, "model {which} panics");
        assert!(snap.completed > 0, "model {which} starved");
        assert!(snap.batches > 0, "model {which} never served a batch");
        assert!(
            snap.batch_items >= snap.completed,
            "model {which}: every completed request went through a batch"
        );
    }
    assert_eq!(snap_a.queue_depth, 0, "drain leaves the queue empty");

    if n >= 1000 {
        assert!(
            snap_a.batch_size_max > 1,
            "saturation must coalesce multi-request batches"
        );
        assert!(
            snap_b.rejected_quota > 0,
            "the metered tenant must hit its quota under saturation"
        );
    }
}

/// The same pipeline with chaos off: everything completes, nothing is
/// shed, and the fault counters stay at zero — the chaos soak's control
/// group, guarding against the runtime injecting failures of its own.
#[test]
fn calm_soak_completes_everything() {
    let n = soak_requests().min(500);
    let (model, inputs) = compiled_small_cnn(43);
    let mut oracle_ctx = model.new_context();
    let oracle: Vec<Vec<f32>> = inputs
        .iter()
        .map(|img| model.infer(&mut oracle_ctx, img))
        .collect();

    let server = Server::start(
        Arc::clone(&model),
        ServerConfig {
            workers: 2,
            queue_capacity: n.max(1),
            ..ServerConfig::default()
        },
    );
    let handles: Vec<(usize, ResponseHandle)> = (0..n)
        .map(|i| {
            let handle = server
                .submit(inputs[i % DISTINCT_INPUTS].clone())
                .unwrap_or_else(|r| panic!("request {i} rejected ({r}) with an unbounded queue"));
            (i, handle)
        })
        .collect();
    for (i, handle) in handles {
        let logits = match wait_with_watchdog(&handle, Duration::from_secs(60)) {
            Ok(l) => l,
            Err(e) => panic!("request {i} failed without chaos: {e}"),
        };
        assert_eq!(logits, oracle[i % DISTINCT_INPUTS], "request {i} diverged");
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed, n as u64);
    assert_eq!(snap.accepted, n as u64);
    assert_eq!(
        snap.failed + snap.worker_panics + snap.worker_restarts + snap.breaker_trips,
        0,
        "calm soak must be fault-free"
    );
}
