//! Allocation guard for the telemetry hot path.
//!
//! The serving contract is that `try_infer` performs exactly one heap
//! allocation per request — the returned logits vector — and that enabling
//! telemetry with the default `NoopSink` adds **zero** further allocations:
//! metric recording is all relaxed atomics, and span construction is gated
//! on `SpanSink::enabled()`. A counting global allocator pins both facts so
//! an accidental `Vec`/`String`/boxing on the recorded path fails loudly.

use bitflow_graph::models::small_cnn;
use bitflow_graph::weights::NetworkWeights;
use bitflow_graph::CompiledModel;
use bitflow_tensor::{Layout, Tensor};
use rand::{rngs::StdRng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::cell::Cell;

thread_local! {
    // const-init so reading the counter never itself allocates.
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn bump() {
        COUNTING.with(|on| {
            if on.get() {
                on.set(false);
                let n = ALLOC_COUNT.with(|c| {
                    c.set(c.get() + 1);
                    c.get()
                });
                if n >= 1 && std::env::var_os("ALLOC_TRACE").is_some() {
                    eprintln!(
                        "--- alloc #{n} ---\n{}",
                        std::backtrace::Backtrace::force_capture()
                    );
                }
                on.set(true);
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        Self::bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        Self::bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        Self::bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread and returns how
/// many heap allocations it performed.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, T) {
    ALLOC_COUNT.with(|c| c.set(0));
    COUNTING.with(|on| on.set(true));
    let out = f();
    COUNTING.with(|on| on.set(false));
    let n = ALLOC_COUNT.with(|c| c.get());
    (n, out)
}

fn infer_alloc_count(enable_telemetry: bool) -> u64 {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(21);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    if enable_telemetry {
        model.enable_telemetry();
    }
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);
    let mut ctx = model.new_context();
    // Warm-up: first call may fault in lazily-initialized state.
    let warm = model.try_infer(&mut ctx, &input).expect("warm-up");
    let (n, out) = count_allocs(|| model.try_infer(&mut ctx, &input).expect("measured"));
    assert_eq!(out, warm, "warm-up and measured runs must agree");
    n
}

#[test]
fn try_infer_allocates_exactly_once_without_telemetry() {
    // The single allocation is the returned logits vector.
    assert_eq!(infer_alloc_count(false), 1);
}

#[test]
fn noop_telemetry_adds_no_allocations() {
    // Recording metrics into the default NoopSink telemetry must not add a
    // single heap allocation over the bare path.
    assert_eq!(infer_alloc_count(true), 1);
}
