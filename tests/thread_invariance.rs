//! Thread-count invariance: every parallel kernel and the serving path must
//! be bit-identical under rayon pools of 1, 2, and N threads.
//!
//! BitFlow's multi-core partitioning is fixed-chunk by design (the bgemm
//! `PAR_K_CHUNK` split, `par_chunks_mut` over output pixels in PressedConv,
//! over channel words in the binary pool) precisely so the work decomposition
//! — and therefore every intermediate integer — does not depend on how many
//! workers drain the chunks. These tests pin that contract for the three
//! `par_chunks_mut` paths (bgemm, pressed_conv, binary pool), the parallel
//! FC, and the end-to-end `try_infer` / `try_infer_batch` serving calls.

use bitflow_graph::models::small_cnn;
use bitflow_graph::weights::{BnParams, NetworkWeights};
use bitflow_graph::{CompiledModel, PlanOptions};
use bitflow_ops::binary::{
    binary_fc, binary_fc_parallel, binary_max_pool, binary_max_pool_parallel, pressed_conv,
    pressed_conv_parallel, pressed_conv_sign_into, pressed_conv_sign_parallel_into,
    BinaryFcWeights, SignThresholds,
};
use bitflow_simd::kernels::SimdLevel;
use bitflow_simd::VectorScheduler;
use bitflow_tensor::{BitFilterBank, BitTensor, FilterShape, Layout, Shape, Tensor};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Pool sizes under test: serial-equivalent, minimal parallelism, and
/// oversubscribed relative to this container's cores.
const POOLS: [usize; 3] = [1, 2, 8];

fn pm1_vec(rng: &mut impl Rng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| if rng.gen::<bool>() { 1.0f32 } else { -1.0 })
        .collect()
}

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T + Send) -> T
where
    T: Send,
{
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn host_level(c: usize) -> SimdLevel {
    VectorScheduler::new().select(c).level
}

#[test]
fn pressed_conv_invariant_across_pools() {
    let mut rng = StdRng::seed_from_u64(11);
    let shape = Shape::hwc(9, 9, 128);
    let fshape = FilterShape::new(16, 3, 3, 128);
    let input = Tensor::from_vec(pm1_vec(&mut rng, shape.numel()), shape, Layout::Nhwc);
    let weights = pm1_vec(&mut rng, fshape.numel());
    let pressed = BitTensor::from_tensor_padded(&input, 1);
    let bank = BitFilterBank::from_floats(&weights, fshape);
    let level = host_level(128);

    let serial = pressed_conv(level, &pressed, &bank, 1);
    for threads in POOLS {
        let got = in_pool(threads, || pressed_conv_parallel(level, &pressed, &bank, 1));
        assert_eq!(
            got.max_abs_diff(&serial),
            0.0,
            "pressed_conv diverges at {threads} threads"
        );
    }
}

#[test]
fn fused_conv_sign_invariant_across_pools() {
    // The fused Conv→BN→Sign kernel writes pressed words directly; its
    // parallel variant splits on output rows, so the packed bits must be
    // identical regardless of pool width.
    let mut rng = StdRng::seed_from_u64(16);
    let shape = Shape::hwc(9, 9, 128);
    let fshape = FilterShape::new(70, 3, 3, 128);
    let input = Tensor::from_vec(pm1_vec(&mut rng, shape.numel()), shape, Layout::Nhwc);
    let weights = pm1_vec(&mut rng, fshape.numel());
    let pressed = BitTensor::from_tensor_padded(&input, 1);
    let bank = BitFilterBank::from_floats(&weights, fshape);
    let level = host_level(128);
    let bn = BnParams::random(70, &mut rng);
    let st = SignThresholds::from_fold(&bn.fold(), 3 * 3 * 128);

    let mut serial = BitTensor::zeros(11, 11, 70);
    pressed_conv_sign_into(level, &pressed, &bank, 1, &st, &mut serial, 1);
    for threads in POOLS {
        let got = in_pool(threads, || {
            let mut out = BitTensor::zeros(11, 11, 70);
            pressed_conv_sign_parallel_into(level, &pressed, &bank, 1, &st, &mut out, 1);
            out
        });
        assert_eq!(
            got.words(),
            serial.words(),
            "fused conv+sign diverges at {threads} threads"
        );
    }
}

#[test]
fn binary_fc_invariant_across_pools() {
    // 4096 input neurons × 1000 outputs: wide enough that PAR_K_CHUNK
    // actually splits the K axis across workers.
    let mut rng = StdRng::seed_from_u64(12);
    let (n, k) = (4096, 1000);
    let input = pm1_vec(&mut rng, n);
    let weights = BinaryFcWeights::pack(&pm1_vec(&mut rng, n * k), n, k);
    let level = VectorScheduler::new().streaming_level();

    let serial = binary_fc(level, &input, &weights);
    for threads in POOLS {
        let got = in_pool(threads, || binary_fc_parallel(level, &input, &weights));
        assert_eq!(got, serial, "binary FC diverges at {threads} threads");
    }
}

#[test]
fn binary_pool_invariant_across_pools() {
    let mut rng = StdRng::seed_from_u64(13);
    let shape = Shape::hwc(12, 12, 256);
    let input = Tensor::from_vec(pm1_vec(&mut rng, shape.numel()), shape, Layout::Nhwc);
    let pressed = BitTensor::from_tensor(&input);
    let level = host_level(256);

    let serial = binary_max_pool(level, &pressed, 2, 2, 2);
    for threads in POOLS {
        let got = in_pool(threads, || {
            binary_max_pool_parallel(level, &pressed, 2, 2, 2)
        });
        assert_eq!(
            got.words(),
            serial.words(),
            "binary pool diverges at {threads} threads"
        );
    }
}

#[test]
fn engine_infer_invariant_across_pools() {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(14);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

    let mut ctx = model.new_context();
    let serial = model.try_infer(&mut ctx, &input).expect("serial infer");

    for threads in POOLS {
        let got = in_pool(threads, || {
            let mut ctx = model.new_context();
            ctx.parallel = true;
            model.try_infer(&mut ctx, &input).expect("parallel infer")
        });
        assert_eq!(got, serial, "try_infer diverges at {threads} threads");
    }
}

#[test]
fn unfused_engine_infer_invariant_across_pools() {
    // The `BITFLOW_FUSE=0` dataflow (parallel float conv, then a separate
    // threshold binarize) must be just as thread-invariant as the fused
    // default — and agree with it bit-for-bit.
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(17);
    let weights = NetworkWeights::random_with_bn(&spec, &mut rng);
    let fused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::default())
        .expect("fused compile");
    let unfused = CompiledModel::try_compile_with(&spec, &weights, &PlanOptions::unfused())
        .expect("unfused compile");
    let input = Tensor::random(spec.input, Layout::Nhwc, &mut rng);

    let mut ctx = fused.new_context();
    let serial = fused.try_infer(&mut ctx, &input).expect("fused serial");

    for threads in POOLS {
        let got = in_pool(threads, || {
            let mut ctx = unfused.new_context();
            ctx.parallel = true;
            unfused.try_infer(&mut ctx, &input).expect("unfused infer")
        });
        assert_eq!(
            got, serial,
            "unfused parallel plan diverges at {threads} threads"
        );
    }
}

#[test]
fn engine_batch_invariant_across_pools() {
    let spec = small_cnn();
    let mut rng = StdRng::seed_from_u64(15);
    let weights = NetworkWeights::random(&spec, &mut rng);
    let model = CompiledModel::compile(&spec, &weights);
    let inputs: Vec<Tensor> = (0..6)
        .map(|_| Tensor::random(spec.input, Layout::Nhwc, &mut rng))
        .collect();

    let mut ctx = model.new_context();
    let serial: Vec<Vec<f32>> = inputs
        .iter()
        .map(|i| model.try_infer(&mut ctx, i).expect("serial infer"))
        .collect();

    for threads in POOLS {
        let batch = in_pool(threads, || model.try_infer_batch(&inputs));
        for (i, (got, want)) in batch.iter().zip(&serial).enumerate() {
            let got = got.as_ref().expect("batch item ok");
            assert_eq!(
                got, want,
                "try_infer_batch item {i} diverges at {threads} threads"
            );
        }
    }
}
