//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the API this workspace's tensor/model containers
//! use: [`BytesMut`] as an append-only build buffer with little-endian
//! `put_*` methods, [`Bytes`] as the frozen read view, and the [`Buf`] /
//! [`BufMut`] traits with the accessors the decoders need. Backing storage
//! is a plain `Vec<u8>` — upstream's ref-counted zero-copy splitting is
//! not needed here.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies the contents into a fresh `Vec`.
    #[allow(clippy::wrong_self_convention)]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads from a byte source.
///
/// Reads panic if fewer than the requested bytes remain, as upstream does —
/// decoders are expected to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes({
            let mut b = [0u8; 4];
            self.copy_to_slice(&mut b);
            b
        })
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(-1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 10);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 10);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.remaining(), 2);
        r.advance(1);
        assert_eq!(r, b"y");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
