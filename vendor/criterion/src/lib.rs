//! Offline stand-in for the `criterion` crate.
//!
//! A functional wall-clock benchmark harness with the API surface this
//! workspace's benches use: `Criterion::benchmark_group`, the
//! `sample_size` / `measurement_time` / `warm_up_time` knobs,
//! `bench_function` with `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It is deliberately simple — warm up for the configured time, then time
//! batches until the measurement window closes, and report the median
//! nanoseconds per iteration to stdout. No statistical outlier analysis,
//! no HTML reports; the paper-figure numbers in this repo come from the
//! dedicated `bitflow-bench` binaries, and these benches are for quick
//! relative comparisons.
//!
//! Passing `--test` (as `cargo test` does for bench targets) or setting
//! `BITFLOW_QUICK=1` runs every benchmark for a single iteration, just
//! validating that it executes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. One per bench binary, created by `criterion_main!`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var("BITFLOW_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for untimed warm-up iterations.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
        } else if let Some(ns) = bencher.median_ns() {
            println!("{}/{}: {} per iter", self.name, id, format_ns(ns));
        } else {
            println!("{}/{}: no samples", self.name, id);
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (sample_budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        let measure_start = Instant::now();
        while self.samples_ns.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time * 2
        {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples_ns.push(dt / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        let mut warmed = false;
        while warm_start.elapsed() < self.warm_up_time || !warmed {
            let input = setup();
            black_box(routine(input));
            warmed = true;
        }
        let measure_start = Instant::now();
        while self.samples_ns.len() < self.sample_size
            && measure_start.elapsed() < self.measurement_time * 2
        {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        Some(s[s.len() / 2])
    }
}

/// Hint for how expensive batched inputs are (ignored: every batch here is
/// one input).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Input is cheap to hold many of.
    SmallInput,
    /// Input is large; set up one per measurement.
    LargeInput,
    /// Input per iteration.
    PerIteration,
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut count = 0usize;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("counts", |b| b.iter(|| count += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 1u32, |x| x + 1, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        group.bench_function("spin", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
        group.finish();
    }
}
