//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]` and `pat in strategy`
//! bindings), [`Strategy`] with `prop_map`, [`Just`], [`any`], integer and
//! float range strategies, strategy tuples, [`collection::vec`],
//! [`prop_oneof!`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline build:
//!
//! * **Deterministic**: every case's RNG seed is derived from the test name
//!   and case index, so failures reproduce exactly without a persistence
//!   file.
//! * **No shrinking**: a failing case reports its inputs' seed but is not
//!   minimized. Shrinking is a debugging convenience, not part of the
//!   pass/fail contract the test suite relies on.

use rand::{Rng, SeedableRng};

/// Per-case random source handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (subset of upstream's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (assumed-away) cases across the whole run.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Inputs violated a `prop_assume!`; the case is retried, not failed.
    Reject(String),
    /// A `prop_assert!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of test-case values.
///
/// Upstream strategies produce shrinkable value *trees*; here a strategy
/// just produces values directly from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Whole-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by the `prop_oneof!` expansion.
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case seed: FNV-1a over the test name, mixed with the
/// case and retry counters.
fn case_seed(name: &str, case: u32, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64) << 32) ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Drives one property test: `run` receives a fresh deterministic RNG per
/// case and returns `Ok` / `Reject` / `Fail`. Called by the [`proptest!`]
/// expansion; panics (failing the `#[test]`) on `Fail` or reject exhaustion.
#[doc(hidden)]
pub fn run_prop_test<F>(config: &ProptestConfig, name: &str, run: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rejects: u32 = 0;
    for case in 0..config.cases {
        loop {
            let seed = case_seed(name, case, rejects);
            let mut rng = TestRng::seed_from_u64(seed);
            match run(&mut rng) {
                Ok(()) => break,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejects}); weaken prop_assume! conditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {msg}");
                }
            }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(cfg = $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_prop_test(&__config, stringify!($name), |__rng| {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), __rng),)+);
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_fns!(cfg = $cfg; $($rest)*);
    };
}

/// Asserts a condition inside a property test; failure reports the
/// generating seed instead of unwinding through the strategy stack.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test, printing both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}",
            a,
            b,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Discards the current case (retried with fresh inputs) when its inputs
/// fall outside the property's precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    //! Single-import surface, as in upstream proptest.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::__boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_oneof_stay_in_bounds() {
        use crate::Strategy;
        use rand::SeedableRng;
        let mut rng = crate::TestRng::seed_from_u64(7);
        for _ in 0..200 {
            let x = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&x));
            let y = prop_oneof![Just(-1.0f32), Just(1.0f32)].generate(&mut rng);
            assert!(y == -1.0 || y == 1.0);
            let v = crate::collection::vec(0u8..3, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        fn macro_binds_tuple_patterns(
            (a, b) in (1u32..10, 1u32..10),
            scale in 2usize..4,
        ) {
            prop_assume!(a != b);
            prop_assert!(a * (scale as u32) >= 2);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a + b, b + a, "commutativity for {} {}", a, b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_prop_test(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            "always_fails",
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }
}
