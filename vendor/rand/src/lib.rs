//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the rand 0.8 API the workspace actually uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — xoshiro256++ seeded via
//!   SplitMix64 (deterministic across platforms; *not* stream-compatible
//!   with upstream rand, which is fine because every caller seeds
//!   explicitly and only relies on determinism, not on specific values);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen`], [`Rng::gen_range`] (integer and float ranges, inclusive
//!   and half-open), [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Uniform sampling uses widening-multiply rejection for integers (unbiased)
//! and 24/53-bit mantissa scaling for floats, matching the statistical
//! contract of the upstream implementations.

/// Low-level uniform bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Explicit deterministic seeding (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a single `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public-domain reference constants).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete RNG types.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference
    /// implementation) — fast, high-quality, deterministic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Small-footprint RNG; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution
    /// (`bool`: fair coin; floats: `[0, 1)`; integers: full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`] (stand-in for rand's `Standard`
/// distribution bound).
pub trait Standard: Sized {
    /// Draws one standard-uniform value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`] (stand-in for rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via widening-multiply
/// rejection (Lemire's method).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { <$t>::from_bits(self.end.to_bits() - 1) }
            }
        }
    )*};
}
range_float!(f32, f64);

pub mod seq {
    //! Sequence-related sampling (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x), "{x}");
            let y = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
