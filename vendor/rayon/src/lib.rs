//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of rayon's API the workspace uses, implemented with
//! `std::thread::scope` fan-out instead of a work-stealing pool:
//!
//! * [`prelude`] with `par_chunks_mut` / `par_iter_mut` on slices, plus the
//!   `enumerate` / `with_min_len` / `for_each` adaptors used on them;
//! * [`ThreadPoolBuilder`] → [`ThreadPool::install`], which scopes the
//!   thread count seen by [`current_num_threads`] (and therefore by every
//!   parallel operation executed inside the closure);
//! * [`current_num_threads`] and [`join`].
//!
//! Parallel operations here are *deterministic in output* by construction:
//! work items are partitioned statically round-robin, each worker mutates
//! only its own disjoint chunks, and no reduction order ever changes. Worker
//! threads are spawned per call; for the coarse-grained kernels in this
//! workspace (rows of GEMM output, output channels of a conv) the spawn cost
//! is far below measurement noise, while still giving true multi-core
//! scaling for the paper's thread-sweep figures.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations use on this thread: the installed
/// pool size if inside [`ThreadPool::install`], else the machine
/// parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| {
        t.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced here; kept for
/// API compatibility with `.expect(..)` call sites).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a sized [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; 0 means machine parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool (infallible in this implementation).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        })
    }
}

/// A sized logical thread pool. Parallel operations executed inside
/// [`ThreadPool::install`] fan out over this many OS threads.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count in effect.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        INSTALLED_THREADS.with(|t| {
            let prev = t.replace(Some(self.num_threads));
            let result = f();
            t.set(prev);
            result
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|scope| {
            let ha = scope.spawn(a);
            let rb = b();
            (ha.join().expect("joined closure panicked"), rb)
        })
    }
}

/// Distributes `items` over the current thread count: each worker receives
/// the items whose index ≡ worker-id (mod workers), preserving disjointness.
/// `f` receives `(original_index, item)`.
fn drive<T: Send, F: Fn(usize, T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().max(1);
    let workers = threads.min(items.len());
    if workers <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    // Static round-robin partition: deterministic ownership, no shared
    // mutable state between workers.
    let mut per_worker: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        per_worker[i % workers].push((i, item));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for bucket in per_worker {
            handles.push(scope.spawn(move || {
                for (i, item) in bucket {
                    f(i, item);
                }
            }));
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}

/// Parallel iterator over mutable chunks of a slice
/// (result of `par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> Enumerated<Self> {
        Enumerated(self)
    }

    /// Lower bound on items per task — a load-balancing hint upstream;
    /// partitioning here is already static, so it is a no-op.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Applies `f` to every chunk, in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync + Send>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk_size).collect();
        drive(chunks, |_, chunk| f(chunk));
    }
}

/// Parallel iterator over mutable elements of a slice
/// (result of `par_iter_mut`).
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Pairs each element with its index.
    pub fn enumerate(self) -> Enumerated<Self> {
        Enumerated(self)
    }

    /// Load-balancing hint; no-op under static partitioning.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Applies `f` to every element, in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync + Send>(self, f: F) {
        let items: Vec<&mut T> = self.slice.iter_mut().collect();
        drive(items, |_, item| f(item));
    }
}

/// Index-carrying wrapper produced by `enumerate`.
pub struct Enumerated<I>(I);

impl<'a, T: Send> Enumerated<ParChunksMut<'a, T>> {
    /// Load-balancing hint; no-op under static partitioning.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Applies `f` to every `(chunk_index, chunk)`, in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync + Send>(self, f: F) {
        let chunks: Vec<&mut [T]> = self.0.slice.chunks_mut(self.0.chunk_size).collect();
        drive(chunks, |i, chunk| f((i, chunk)));
    }
}

impl<'a, T: Send> Enumerated<ParIterMut<'a, T>> {
    /// Load-balancing hint; no-op under static partitioning.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Applies `f` to every `(index, element)`, in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync + Send>(self, f: F) {
        let items: Vec<&mut T> = self.0.slice.iter_mut().collect();
        drive(items, |i, item| f((i, item)));
    }
}

pub mod prelude {
    //! Parallel-slice extension traits (subset of `rayon::prelude`).

    use super::{ParChunksMut, ParIterMut};

    /// `par_chunks_mut` / `par_iter_mut` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel mutable chunks of `chunk_size` (last may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;

        /// Parallel mutable elements.
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }

        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let outer = current_num_threads();
        assert!(outer >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 10 + 1);
        }
    }

    #[test]
    fn par_iter_mut_visits_every_element_once() {
        let mut v = vec![0u64; 1000];
        v.par_iter_mut()
            .enumerate()
            .with_min_len(8)
            .for_each(|(i, x)| {
                *x += i as u64;
            });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let mut v = [0usize; 17];
        pool.install(|| {
            v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        });
        assert_eq!(v[16], 16);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }
}
