//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of serde's surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (over a JSON-shaped [`Value`]
//! data model rather than upstream's visitor architecture) and the matching
//! derive macros re-exported from `serde_derive_shim`.
//!
//! The derive macros support structs with named fields, tuple structs, and
//! enums with unit / tuple / struct variants, in serde's default externally
//! tagged representation — exactly what this workspace's model headers,
//! specs, and bench result records need. `serde_json` (also vendored)
//! serializes [`Value`] trees to JSON text and parses them back.

/// Derive macros (same names as the traits, as in upstream serde).
pub use serde_derive_shim::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate data model between typed
/// Rust values and serialized text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (stored exactly).
    Int(i64),
    /// Non-negative integer (stored exactly).
    UInt(u64),
    /// 64-bit float.
    Float(f64),
    /// 32-bit float, kept distinct so serialization can emit the shortest
    /// representation that round-trips at `f32` precision.
    Float32(f32),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered (sufficient for this workspace, and
    /// keeps serialized headers stable and readable).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, treating a missing key as `Null`
    /// (which deserializes to `None` for `Option` fields and errors for
    /// everything else).
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => Ok(fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&Value::Null)),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) | Value::Float32(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

// `Value` participates in both traits as the identity conversion, so
// callers can parse arbitrary JSON into a tree, edit it (e.g. stamp a
// schema-version field), and serialize it back.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::new(format!("integer {u} out of range")))?,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("integer {raw} out of range")))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float32(*self)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Float32(x) => Ok(*x as f64),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        let xs = vec![1.5f32, -2.25, 0.0];
        assert_eq!(Vec::<f32>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&3u32.to_value()), Ok(Some(3)));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.field("a").unwrap(), &Value::UInt(1));
        assert_eq!(obj.field("b").unwrap(), &Value::Null);
        assert!(Value::UInt(1).field("a").is_err());
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
