//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls over the JSON-shaped
//! `serde::Value` data model, for the type shapes this workspace uses:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants (serde's default externally tagged
//! representation). Parsing is done directly on the token stream — the
//! usual `syn`/`quote` helpers are unavailable offline.
//!
//! Unsupported shapes (generic types, unions, `#[serde(...)]` attributes)
//! produce a `compile_error!` naming the limitation rather than silently
//! generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (conversion from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

/// The parsed shape of a derive target.
enum Shape {
    /// `struct S { a: A, b: B }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(A, B);` — arity 1 is treated transparently (newtype).
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let code = match parse(input) {
        Ok(shape) => match which {
            Which::Serialize => gen_serialize(&shape),
            Which::Deserialize => gen_deserialize(&shape),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("derive output must be valid Rust")
}

// --- parsing ---------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type `{name}` is not supported by the vendored serde"
        ));
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            _ => Err(format!("serde derive: malformed struct `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("serde derive: malformed enum `{name}`")),
        },
        other => Err(format!("serde derive: cannot derive for `{other}`")),
    }
}

/// Skips leading `#[...]` attributes, doc comments, and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a named-field body (`a: A, b: B, ...`),
/// skipping types — including generic types containing commas inside
/// angle brackets.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected field name, found `{other}`"
                ))
            }
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde derive: expected `:` after field `{field}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

/// Advances past a type up to (and over) the next top-level comma,
/// tracking `<`/`>` angle-bracket depth.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple body (top-level commas + 1, empty → 0).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_type(&tokens, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected variant name, found `{other}`"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// --- code generation -------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            impl_serialize(
                name,
                format!("::serde::Value::Object(::std::vec![{entries}])"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            impl_serialize(name, format!("::serde::Value::Array(::std::vec![{items}])"))
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null".to_string()),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                              ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let pat: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: String = pat
                                .iter()
                                .map(|f| format!("::serde::Serialize::to_value({f}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  ::serde::Value::Array(::std::vec![{items}]))]),",
                                pat.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pat = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {pat} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vname:?}), \
                                  ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, format!("match self {{ {arms} }}"))
        }
    }
}

fn impl_serialize(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,"))
                .collect();
            impl_deserialize(
                name,
                format!("::std::result::Result::Ok({name} {{ {inits} }})"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            impl_deserialize(
                name,
                format!(
                    "match v {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => \
                             ::std::result::Result::Ok({name}({inits})),\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"expected {arity}-element array for {name}, \
                              found {{}}\", other.kind()))),\n\
                     }}"
                ),
            )
        }
        Shape::UnitStruct { name } => impl_deserialize(
            name,
            format!("let _ = v; ::std::result::Result::Ok({name})"),
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: String = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "{vname:?} => match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {arity} => \
                                         ::std::result::Result::Ok({name}::{vname}({inits})),\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"expected {arity}-element array for \
                                          {name}::{vname}, found {{}}\", other.kind()))),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field({f:?})?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            impl_deserialize(
                name,
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(s) => match s.as_str() {{\n\
                             {unit_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }},\n\
                         ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                             let (tag, inner) = &entries[0];\n\
                             match tag.as_str() {{\n\
                                 {tagged_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }}\n\
                         }}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"expected {name} variant, found {{}}\", \
                              other.kind()))),\n\
                     }}"
                ),
            )
        }
    }
}

fn impl_deserialize(name: &str, body: String) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
