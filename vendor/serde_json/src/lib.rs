//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde::Value` data model to JSON text and
//! parses JSON text back into it. Covers the workspace's surface:
//! [`to_vec`], [`to_string`], [`to_string_pretty`], [`from_slice`],
//! [`from_str`].
//!
//! Float fidelity matters here: model headers round-trip `f32` weights
//! through JSON and the tests assert exact equality. `f32` values are
//! emitted with Rust's `{}` formatting (the shortest string that parses
//! back to the same `f32`), and parsing goes through `f64` — which is
//! exact for every shortest-`f32` decimal string — before narrowing.

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(data: &[u8]) -> Result<T, Error> {
    let mut p = Parser { data, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.data.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

// --- emitter ---------------------------------------------------------------

/// Writes `v` as JSON. `indent = Some(n)` pretty-prints with `n`-space
/// indentation at nesting `depth`; `None` is compact.
fn emit(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => emit_f64(*x, out),
        Value::Float32(x) => {
            if x.is_finite() {
                // `{}` on f32 is the shortest decimal that round-trips.
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_str(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                emit_str(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
}

fn emit_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{}` on f64 is likewise shortest-round-trip; whole values print
        // without a fraction ("1"), which parses back as an exact integer
        // and widens exactly in `f64::from_value`.
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.data.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.data[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("bad surrogate pair"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                }
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.data.len() {
                        return Err(Error::new("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.data[start..end])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.data.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.data[self.pos..end])
            .map_err(|_| Error::new("bad unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.data[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer. `-0` normalizes to UInt(0).
            if stripped.chars().all(|c| c == '0') {
                Ok(Value::UInt(0))
            } else {
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| Error::new(format!("bad number `{text}`")))
            }
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&vec![1.5f32, -0.25, 3.0]).unwrap();
        assert_eq!(s, "[1.5,-0.25,3]");
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1.5, -0.25, 3.0]);
    }

    #[test]
    fn f32_bit_exact_round_trip() {
        // Values with no short decimal representation must still survive.
        let xs: Vec<f32> = vec![0.1, 1.0 / 3.0, f32::MIN_POSITIVE, 1e-8, 123_456.79];
        let s = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = to_string(&"a\"b\\c\nd\u{7}é".to_string()).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd\u{7}é");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u32, u32)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn negative_integers_parse() {
        let back: Vec<i64> = from_str("[-1, -9223372036854775808, 0]").unwrap();
        assert_eq!(back, vec![-1, i64::MIN, 0]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
